//! Per-uop x86-64 template emission.
//!
//! One lowered block body compiles to one *trace*: a position-independent
//! byte string with two entry points and a shared-epilogue exit protocol.
//!
//! ```text
//! +0      external entry   push r12/r13/r14/rbx/rbp/r15; r12=ctx,
//!                          r14=trace id, r13=ctx.xregs, rbx=ctx.fuel,
//!                          rbp=0 (cycle delta), r15=0 (chained-pass
//!                          delta); jmp body
//! chain   chain entry      stamp check (stamps[r14] == ctx.cur_gen?),
//!                          fuel check (rbx >= ops_len?), r15 += 1;
//!                          fall into body
//! body                     one template per uop (helper call-outs
//!                          publish r14 to ctx.cur_trace first)
//! exits                    const delta flush + a patchable 24-byte slot
//!                          holding the pc commit (Fall/Taken — patching
//!                          overwrites it, the successor re-commits), or
//!                          a pc commit + IBT probe (Indirect)
//! stubs                    revalidate/budget exits for the chain entry,
//!                          the epilogue thunk for helper-call exits
//! cold                     slow-path memory call-outs jumped to from
//!                          the in-body fast-path range checks
//! ```
//!
//! Templates mirror `Cpu::exec_lowered` *accounting* exactly, batched as
//! compile-time constants: cycle costs and load/store tallies accumulate
//! in the `JitCtx` delta fields only at observable boundaries (helper
//! calls and block exits). Retired counts have no delta field at all:
//! the templates decrement `fuel` by the same constant the engine would
//! retire, and the runtime credits `instret` from the fuel consumed
//! since the last drain. A helper call-out flushes the deltas
//! for every *prior* op (trap state must be exact), then reverses the
//! flush on success so the op is instead covered by the next boundary's
//! constants — the [`MicroOp::Generic`] call-out is the one exception:
//! its helper drains the deltas into `ExecStats` for real (matching the
//! engine's `flush!()` before `Cpu::exec`) and the compile-time baseline
//! resets behind it.
//!
//! Everything here is pure data manipulation; no emitted byte is
//! executed in this module.

use super::asm::{Alu, Asm, Cc, Label, R12, R13, R14, R15, RAX, RBP, RBX, RCX, RDI, RDX, RSI};
use super::off;
use crate::uop::{MicroOp, Uop};
use chimera_isa::{BranchKind, FpWidth, LoadKind, OpImmKind, OpKind, XReg};

/// Trace exit statuses (returned in `rax` through the shared epilogue).
pub(super) const ST_FALL: u32 = 0;
/// Taken direct edge (`jal`, taken branch).
pub(super) const ST_TAKEN: u32 = 1;
/// Indirect jump (`jalr`); target already committed to `ctx.pc`.
pub(super) const ST_INDIRECT: u32 = 2;
/// Mid-trace bail (store invalidated this trace's own region).
pub(super) const ST_BAIL: u32 = 3;
/// The fuel check at a chain entry failed.
pub(super) const ST_BUDGET: u32 = 4;
/// A helper call-out trapped; `ctx.trap` holds it.
pub(super) const ST_TRAP: u32 = 5;
/// The stamp check at a chain entry failed; `ctx.exit_from` names the
/// trace that needs revalidation.
pub(super) const ST_REVAL: u32 = 6;

/// Byte length of a patchable exit slot (unpatched and patched forms are
/// both padded to this). The unpatched form carries the successor-pc
/// commit, so a patched (in-arena) edge skips the store entirely.
pub(super) const EXIT_SLOT_LEN: usize = 24;

/// A patchable exit: where its slot sits in the trace and the guest pc
/// the edge leads to.
#[derive(Debug, Clone, Copy)]
pub(super) struct ExitSlot {
    /// Slot offset inside the trace's code.
    pub off: usize,
    /// Successor guest pc.
    pub target: u64,
}

/// One compiled trace, ready to be copied into the arena.
#[derive(Debug)]
pub(super) struct CompiledTrace {
    /// The position-independent code (external entry at offset 0).
    pub code: Vec<u8>,
    /// Offset of the chain entry (patched direct jumps land here).
    pub chain: usize,
    /// Offset of the indirect entry (`mov r14d, imm32` falling into the
    /// chain entry); the imm32 placeholder at `ind + 2` is stamped with
    /// the trace index at install time, and IBT hits jump here.
    pub ind: usize,
    /// Patchable exits: `[fall, taken]`.
    pub exits: [Option<ExitSlot>; 2],
}

/// The shared epilogue, emitted once at arena offset 0 and reached from
/// every trace via `jmp qword [r12 + EPILOGUE]`: records which trace
/// exited, syncs the register-carried fuel and cycle delta back into the
/// context, restores the callee-saved registers and returns the status
/// already in `rax`.
pub(super) fn epilogue_code() -> Vec<u8> {
    let mut a = Asm::new();
    a.mov_mr(R12, off::EXIT_FROM, R14);
    a.mov_mr(R12, off::FUEL, RBX);
    a.alu_mr(Alu::Add, R12, off::D_CYCLES, RBP);
    a.alu_mr(Alu::Add, R12, off::D_JITTED, R15);
    // The rcx pop discards the prologue's alignment slot.
    a.pop(RCX);
    a.pop(R15);
    a.pop(RBP);
    a.pop(RBX);
    a.pop(R14);
    a.pop(R13);
    a.pop(R12);
    a.ret();
    a.finish()
}

/// The patched form of an exit slot: `mov r14d, succ; jmp rel32` to the
/// successor's chain entry, padded with `int3` to [`EXIT_SLOT_LEN`].
/// `rel` is relative to the byte after the `jmp` (slot offset + 11).
pub(super) fn patched_exit_bytes(succ: u32, rel: i32) -> [u8; EXIT_SLOT_LEN] {
    let mut b = [0xcc_u8; EXIT_SLOT_LEN];
    b[0] = 0x41;
    b[1] = 0xbe;
    b[2..6].copy_from_slice(&succ.to_le_bytes());
    b[6] = 0xe9;
    b[7..11].copy_from_slice(&rel.to_le_bytes());
    b
}

/// Offset, within a patchable slot, of the byte after its `jmp rel32`
/// (the base the displacement is relative to).
pub(super) const EXIT_PATCH_JMP_END: usize = 11;

/// Compile-time accounting since the last flushed boundary.
#[derive(Debug, Clone, Copy, Default)]
struct Acc {
    instret: u32,
    cycles: u64,
    loads: u32,
    stores: u32,
}

/// A recorded slow-path call-out, emitted after the body so the hot path
/// stays straight-line. At the jump the faulting-candidate address is in
/// `rax`.
#[derive(Debug)]
struct ColdSite {
    cold: Label,
    rejoin: Label,
    helper: i32,
    op_idx: u32,
    pc: u64,
    acc: Acc,
}

fn xoff(r: XReg) -> i32 {
    r.index() as i32 * 8
}

fn branch_cc(kind: BranchKind) -> Cc {
    match kind {
        BranchKind::Beq => Cc::E,
        BranchKind::Bne => Cc::Ne,
        BranchKind::Blt => Cc::L,
        BranchKind::Bge => Cc::Ge,
        BranchKind::Bltu => Cc::B,
        BranchKind::Bgeu => Cc::Ae,
    }
}

fn width_log2(bytes: u8) -> i32 {
    match bytes {
        1 => 0,
        2 => 1,
        4 => 2,
        8 => 3,
        _ => unreachable!("bad access width"),
    }
}

fn load_width(kind: LoadKind) -> (u8, bool) {
    match kind {
        LoadKind::Lb => (1, true),
        LoadKind::Lbu => (1, false),
        LoadKind::Lh => (2, true),
        LoadKind::Lhu => (2, false),
        LoadKind::Lw => (4, true),
        LoadKind::Lwu => (4, false),
        LoadKind::Ld => (8, false),
    }
}

/// Adds (or with `neg`, subtracts) the accumulated constants to the
/// context delta fields. The fuel decrement *is* the retired-count
/// record: drains credit `instret` from consumed fuel.
fn emit_deltas(a: &mut Asm, acc: Acc, neg: bool) {
    let op = if neg { Alu::Sub } else { Alu::Add };
    let unop = if neg { Alu::Add } else { Alu::Sub };
    let cycles = i32::try_from(acc.cycles).expect("block cycle constant overflow");
    if acc.instret > 0 {
        a.alu_ri(unop, RBX, acc.instret as i32);
    }
    if acc.cycles > 0 {
        a.alu_ri(op, RBP, cycles);
    }
    if acc.loads > 0 {
        a.alu_mi(op, R12, off::D_LOADS, acc.loads as i32);
    }
    if acc.stores > 0 {
        a.alu_mi(op, R12, off::D_STORES, acc.stores as i32);
    }
}

/// Commits a compile-time-constant guest pc to `ctx.pc`.
fn emit_set_pc(a: &mut Asm, pc: u64) {
    if i32::try_from(pc as i64).is_ok() {
        a.mov_mi(R12, off::PC, pc as i32);
    } else {
        a.mov_ri(RCX, pc);
        a.mov_mr(R12, off::PC, RCX);
    }
}

/// Writes a compile-time constant into guest register `rd` (skipped for
/// the zero register by every caller).
fn emit_set_x_const(a: &mut Asm, rd: XReg, v: u64) {
    if i32::try_from(v as i64).is_ok() {
        a.mov_mi(R13, xoff(rd), v as i32);
    } else {
        a.mov_ri(RAX, v);
        a.mov_mr(R13, xoff(rd), RAX);
    }
}

struct Compiler {
    a: Asm,
    epi_thunk: Label,
    cold: Vec<ColdSite>,
    /// Patchable slot positions discovered while emitting (offsets fixed,
    /// no label involvement).
    exits: [Option<ExitSlot>; 2],
}

impl Compiler {
    /// Emits a block exit: flush the deltas (including the terminal op),
    /// then the patchable exit slot. The successor-pc commit sits inside
    /// the slot when the pc fits an imm32 (patching then elides it — the
    /// successor trace commits its own exits), and before the slot
    /// otherwise.
    fn emit_exit(&mut self, acc: Acc, status: u32, target: u64, branch: bool) {
        emit_deltas(&mut self.a, acc, false);
        if branch {
            self.a.alu_mi(Alu::Add, R12, off::D_BRANCHES, 1);
        }
        let fits = i32::try_from(target as i64).is_ok();
        if !fits {
            emit_set_pc(&mut self.a, target);
        }
        let slot = self.a.len();
        if fits {
            self.a.mov_mi(R12, off::PC, target as i32);
        }
        self.a.mov_ri(RAX, status as u64);
        self.a.jmp_m(R12, off::EPILOGUE);
        while self.a.len() - slot < EXIT_SLOT_LEN {
            self.a.int3();
        }
        assert_eq!(self.a.len() - slot, EXIT_SLOT_LEN, "exit slot layout");
        let idx = if status == ST_TAKEN { 1 } else { 0 };
        assert!(self.exits[idx].is_none(), "duplicate exit edge");
        self.exits[idx] = Some(ExitSlot { off: slot, target });
    }

    /// Emits an indirect-jump exit: flush, commit the target (in `rax`)
    /// to `ctx.pc`, then probe the indirect-branch target table. A hit
    /// jumps straight to the successor trace's indirect entry — whose
    /// chain-entry stamp and fuel checks still run, so the table is a
    /// pure optimization — and a miss exits `ST_INDIRECT` through the
    /// epilogue for the Rust dispatcher.
    fn emit_exit_ibt(&mut self, acc: Acc) {
        emit_deltas(&mut self.a, acc, false);
        self.a.alu_mi(Alu::Add, R12, off::D_INDIRECT, 1);
        self.a.mov_mr(R12, off::PC, RAX);
        let miss = self.a.label();
        self.a.mov_rr(RCX, RAX);
        self.a.shr_ri(RCX, 1);
        self.a.alu_ri(Alu::And, RCX, (super::IBT_LEN - 1) as i32);
        self.a.mov_rm(RDX, R12, off::IBT_KEYS);
        self.a.alu_rm_s8(Alu::Cmp, RAX, RDX, RCX);
        self.a.jcc(Cc::Ne, miss);
        self.a.mov_rm(RDX, R12, off::IBT_VALS);
        self.a.mov_rm_s8(RDX, RDX, RCX);
        self.a.jmp_r(RDX);
        self.a.bind(miss);
        self.a.mov_ri(RAX, ST_INDIRECT as u64);
        self.a.jmp_m(R12, off::EPILOGUE);
    }

    /// Emits the flush + call + status-check + unflush sequence shared by
    /// every faultable helper call-out. The address argument must already
    /// be in `rsi`; on success the helper has done the access (and any
    /// register write) itself. `cur_trace` is published here — helpers
    /// are the only readers, so the hot body skips the store.
    fn emit_faultable_call(&mut self, helper: i32, op_idx: u32, pc: u64, acc: Acc) {
        self.a.mov_mr(R12, off::CUR_TRACE, R14);
        emit_deltas(&mut self.a, acc, false);
        emit_set_pc(&mut self.a, pc);
        // Store helpers mutate `ctx.fuel` (the mid-trace bail accounts
        // its own op) and may drain, so the register-carried counters
        // spill before and reload after; the other helpers never touch
        // them.
        let touches_fuel = helper == off::H_STORE || helper == off::H_FSTORE;
        if touches_fuel {
            self.a.mov_mr(R12, off::FUEL, RBX);
            self.a.alu_mr(Alu::Add, R12, off::D_CYCLES, RBP);
            self.a.alu_rr(Alu::Xor, RBP, RBP);
        }
        self.a.mov_rr(RDI, R12);
        self.a.mov_ri(RDX, op_idx as u64);
        self.a.call_m(R12, helper);
        if touches_fuel {
            self.a.mov_rm(RBX, R12, off::FUEL);
        }
        self.a.test_rr(RAX, RAX);
        self.a.jcc(Cc::Ne, self.epi_thunk);
        emit_deltas(&mut self.a, acc, true);
    }

    /// Emits the in-body fast path of a scalar load/store: compute the
    /// address in `rax`, range-check against the installed region mirror
    /// and jump to a cold call-out on a miss.
    fn emit_mem_fast(&mut self, u: &Uop, op_idx: u32, pc: u64, acc: Acc) {
        let (rs1, offset, store) = match u.op {
            MicroOp::Load { rs1, offset, .. } => (rs1, offset, false),
            MicroOp::Store { rs1, offset, .. } => (rs1, offset, true),
            _ => unreachable!("not a scalar memory op"),
        };
        let (bytes, helper, base_off, start_off, lim_off) = match u.op {
            MicroOp::Load { kind, .. } => (
                load_width(kind).0,
                off::H_LOAD,
                off::LD_BASE,
                off::LD_START,
                off::LD_LIM,
            ),
            MicroOp::Store { kind, .. } => (
                kind.size() as u8,
                off::H_STORE,
                off::ST_BASE,
                off::ST_START,
                off::ST_LIM,
            ),
            _ => unreachable!(),
        };
        let cold = self.a.label();
        let rejoin = self.a.label();
        self.a.mov_rm(RAX, R13, xoff(rs1));
        if offset != 0 {
            self.a.alu_ri(Alu::Add, RAX, offset);
        }
        self.a.mov_rr(RDX, RAX);
        self.a.alu_rm(Alu::Sub, RDX, R12, start_off);
        self.a
            .alu_rm(Alu::Cmp, RDX, R12, lim_off + 8 * width_log2(bytes));
        self.a.jcc(Cc::Ae, cold);
        self.a.mov_rm(RCX, R12, base_off);
        if store {
            let MicroOp::Store { rs2, .. } = u.op else {
                unreachable!()
            };
            self.a.mov_rm(RSI, R13, xoff(rs2));
            self.a.store_idx(RCX, RDX, RSI, bytes);
        } else {
            let MicroOp::Load { kind, rd, .. } = u.op else {
                unreachable!()
            };
            let (bytes, signed) = load_width(kind);
            if signed {
                self.a.load_sx(RAX, RCX, RDX, bytes);
            } else {
                self.a.load_zx(RAX, RCX, RDX, bytes);
            }
            if rd != XReg::ZERO {
                self.a.mov_mr(R13, xoff(rd), RAX);
            }
        }
        self.a.bind(rejoin);
        self.cold.push(ColdSite {
            cold,
            rejoin,
            helper,
            op_idx,
            pc,
            acc,
        });
    }

    /// Emits the in-body fast path of an FP load/store against the same
    /// region mirrors as the scalar ops: NaN-box single loads exactly as
    /// `jit_fload` does, and store raw FP bits through the writable
    /// non-executable store mirror (so SMC bookkeeping is never
    /// bypassed). Mirror misses jump to the FP helper call-outs.
    fn emit_fmem_fast(&mut self, u: &Uop, op_idx: u32, pc: u64, acc: Acc) {
        let cold = self.a.label();
        let rejoin = self.a.label();
        match u.op {
            MicroOp::FLoad {
                width,
                frd,
                rs1,
                offset,
            } => {
                let bytes: u8 = if width == FpWidth::S { 4 } else { 8 };
                self.a.mov_rm(RAX, R13, xoff(rs1));
                if offset != 0 {
                    self.a.alu_ri(Alu::Add, RAX, offset);
                }
                self.a.mov_rr(RDX, RAX);
                self.a.alu_rm(Alu::Sub, RDX, R12, off::LD_START);
                self.a
                    .alu_rm(Alu::Cmp, RDX, R12, off::LD_LIM + 8 * width_log2(bytes));
                self.a.jcc(Cc::Ae, cold);
                self.a.mov_rm(RCX, R12, off::LD_BASE);
                self.a.load_zx(RAX, RCX, RDX, bytes);
                if width == FpWidth::S {
                    self.a.mov_ri(RCX, 0xffff_ffff_0000_0000);
                    self.a.alu_rr(Alu::Or, RAX, RCX);
                }
                self.a.mov_rm(RCX, R12, off::FREGS);
                self.a.mov_mr(RCX, frd.index() as i32 * 8, RAX);
                self.cold.push(ColdSite {
                    cold,
                    rejoin,
                    helper: off::H_FLOAD,
                    op_idx,
                    pc,
                    acc,
                });
            }
            MicroOp::FStore {
                width,
                frs2,
                rs1,
                offset,
            } => {
                let bytes: u8 = if width == FpWidth::S { 4 } else { 8 };
                self.a.mov_rm(RAX, R13, xoff(rs1));
                if offset != 0 {
                    self.a.alu_ri(Alu::Add, RAX, offset);
                }
                self.a.mov_rr(RDX, RAX);
                self.a.alu_rm(Alu::Sub, RDX, R12, off::ST_START);
                self.a
                    .alu_rm(Alu::Cmp, RDX, R12, off::ST_LIM + 8 * width_log2(bytes));
                self.a.jcc(Cc::Ae, cold);
                self.a.mov_rm(RCX, R12, off::FREGS);
                self.a.mov_rm(RSI, RCX, frs2.index() as i32 * 8);
                self.a.mov_rm(RCX, R12, off::ST_BASE);
                self.a.store_idx(RCX, RDX, RSI, bytes);
                self.cold.push(ColdSite {
                    cold,
                    rejoin,
                    helper: off::H_FSTORE,
                    op_idx,
                    pc,
                    acc,
                });
            }
            _ => unreachable!("not an fp memory op"),
        }
        self.a.bind(rejoin);
    }

    /// Emits one register-immediate ALU template (`rd` is never the zero
    /// register here). Returns false if the kind needs the helper.
    fn emit_opimm(&mut self, kind: OpImmKind, rd: XReg, rs1: XReg, imm: i32) -> bool {
        let a = &mut self.a;
        match kind {
            OpImmKind::Addi | OpImmKind::Xori | OpImmKind::Ori | OpImmKind::Andi => {
                let op = match kind {
                    OpImmKind::Addi => Alu::Add,
                    OpImmKind::Xori => Alu::Xor,
                    OpImmKind::Ori => Alu::Or,
                    _ => Alu::And,
                };
                a.mov_rm(RAX, R13, xoff(rs1));
                a.alu_ri(op, RAX, imm);
            }
            OpImmKind::Slti | OpImmKind::Sltiu => {
                a.mov_rm(RAX, R13, xoff(rs1));
                a.alu_ri(Alu::Cmp, RAX, imm);
                a.setcc_zx(
                    if kind == OpImmKind::Slti {
                        Cc::L
                    } else {
                        Cc::B
                    },
                    RAX,
                );
            }
            OpImmKind::Slli | OpImmKind::Srli | OpImmKind::Srai => {
                a.mov_rm(RAX, R13, xoff(rs1));
                let sh = (imm & 63) as u8;
                match kind {
                    OpImmKind::Slli => a.shl_ri(RAX, sh),
                    OpImmKind::Srli => a.shr_ri(RAX, sh),
                    _ => a.sar_ri(RAX, sh),
                }
            }
            OpImmKind::Addiw => {
                a.mov_rm(RAX, R13, xoff(rs1));
                a.alu_ri32(Alu::Add, RAX, imm);
                a.movsxd(RAX, RAX);
            }
            OpImmKind::Slliw | OpImmKind::Srliw | OpImmKind::Sraiw => {
                a.mov_rm32(RAX, R13, xoff(rs1));
                let sh = (imm & 31) as u8;
                match kind {
                    OpImmKind::Slliw => a.shl32_ri(RAX, sh),
                    OpImmKind::Srliw => a.shr32_ri(RAX, sh),
                    _ => a.sar32_ri(RAX, sh),
                }
                a.movsxd(RAX, RAX);
            }
            OpImmKind::Rori => return false,
        }
        a.mov_mr(R13, xoff(rd), RAX);
        true
    }

    /// Emits one register-register ALU template (`rd` never zero).
    /// Returns false if the kind needs the helper.
    fn emit_op(&mut self, kind: OpKind, rd: XReg, rs1: XReg, rs2: XReg) -> bool {
        let a = &mut self.a;
        match kind {
            OpKind::Add | OpKind::Sub | OpKind::Xor | OpKind::Or | OpKind::And => {
                let op = match kind {
                    OpKind::Add => Alu::Add,
                    OpKind::Sub => Alu::Sub,
                    OpKind::Xor => Alu::Xor,
                    OpKind::Or => Alu::Or,
                    _ => Alu::And,
                };
                a.mov_rm(RAX, R13, xoff(rs1));
                a.alu_rm(op, RAX, R13, xoff(rs2));
            }
            OpKind::Slt | OpKind::Sltu => {
                a.mov_rm(RAX, R13, xoff(rs1));
                a.cmp_rm(RAX, R13, xoff(rs2));
                a.setcc_zx(if kind == OpKind::Slt { Cc::L } else { Cc::B }, RAX);
            }
            // x86 variable shifts mask cl by 63 (64-bit) / 31 (32-bit),
            // exactly the `b & 63` / `b & 31` in `exec_op`.
            OpKind::Sll | OpKind::Srl | OpKind::Sra => {
                a.mov_rm(RAX, R13, xoff(rs1));
                a.mov_rm(RCX, R13, xoff(rs2));
                match kind {
                    OpKind::Sll => a.shl_cl(RAX),
                    OpKind::Srl => a.shr_cl(RAX),
                    _ => a.sar_cl(RAX),
                }
            }
            OpKind::Sllw | OpKind::Srlw | OpKind::Sraw => {
                a.mov_rm32(RAX, R13, xoff(rs1));
                a.mov_rm(RCX, R13, xoff(rs2));
                match kind {
                    OpKind::Sllw => a.shl32_cl(RAX),
                    OpKind::Srlw => a.shr32_cl(RAX),
                    _ => a.sar32_cl(RAX),
                }
                a.movsxd(RAX, RAX);
            }
            OpKind::Addw | OpKind::Subw => {
                a.mov_rm(RAX, R13, xoff(rs1));
                let op = if kind == OpKind::Addw {
                    Alu::Add
                } else {
                    Alu::Sub
                };
                a.alu_rm(op, RAX, R13, xoff(rs2));
                a.movsxd(RAX, RAX);
            }
            OpKind::Mul => {
                a.mov_rm(RAX, R13, xoff(rs1));
                a.mov_rm(RCX, R13, xoff(rs2));
                a.imul_rr(RAX, RCX);
            }
            OpKind::Mulw => {
                a.mov_rm(RAX, R13, xoff(rs1));
                a.mov_rm(RCX, R13, xoff(rs2));
                a.imul_rr32(RAX, RCX);
                a.movsxd(RAX, RAX);
            }
            // Multi-instruction sequences (mulh/div/rem, Zbb two-source)
            // go through the shared-semantics helper instead of growing
            // the template catalogue.
            _ => return false,
        }
        a.mov_mr(R13, xoff(rd), RAX);
        true
    }

    /// Pure helper call (`jit_opimm`/`jit_op`/`jit_unary`): cannot fault,
    /// so no flush; result lands in `rd`.
    fn emit_pure_call(&mut self, helper: i32, op_idx: u32, rd: XReg, rs1: XReg, rs2: Option<XReg>) {
        let a = &mut self.a;
        a.mov_mr(R12, off::CUR_TRACE, R14);
        a.mov_rm(RSI, R13, xoff(rs1));
        let idx_reg = if let Some(rs2) = rs2 {
            a.mov_rm(RDX, R13, xoff(rs2));
            RCX
        } else {
            RDX
        };
        a.mov_rr(RDI, R12);
        a.mov_ri(idx_reg, op_idx as u64);
        a.call_m(R12, helper);
        a.mov_mr(R13, xoff(rd), RAX);
    }
}

/// Compiles one lowered block body starting at guest `pc` into a trace.
///
/// Deterministic: the emitted bytes depend only on `ops` and `pc`, which
/// is what makes sever-then-repromote byte-identical (asserted by the
/// SMC regression suite).
pub(super) fn compile(ops: &[Uop], pc: u64) -> CompiledTrace {
    let mut a = Asm::new();
    let body = a.label();
    let reval = a.label();
    let budget = a.label();
    let epi_thunk = a.label();
    let mut c = Compiler {
        a,
        epi_thunk,
        cold: Vec::new(),
        exits: [None, None],
    };

    // External entry: establish the register contract and skip the chain
    // entry's checks (the Rust caller already validated and funded).
    // Fuel rides in rbx, the cycle delta in rbp and the chained-pass
    // delta in r15 for the whole invocation — callee-saved, so helper
    // call-outs preserve them for free; the epilogue (and spills around
    // the delta-reading helpers) syncs them back into the context. The
    // final rax push keeps the push count odd, preserving the 16-byte
    // stack alignment helper calls require.
    c.a.push(R12);
    c.a.push(R13);
    c.a.push(R14);
    c.a.push(RBX);
    c.a.push(RBP);
    c.a.push(R15);
    c.a.push(RAX);
    c.a.mov_rr(R12, RDI);
    c.a.mov_rr32(R14, RSI);
    c.a.mov_rm(R13, R12, off::XREGS);
    c.a.mov_rm(RBX, R12, off::FUEL);
    c.a.alu_rr(Alu::Xor, RBP, RBP);
    c.a.alu_rr(Alu::Xor, R15, R15);
    c.a.jmp(body);

    // Indirect entry: IBT probes jump here from other traces' jalr exits.
    // The successor index cannot be known while compiling (the trace has
    // not been installed yet), so a placeholder imm32 is stamped with the
    // real index at install time; it falls straight into the chain
    // entry's stamp and fuel checks.
    let ind = c.a.len();
    c.a.mov_ri(R14, 0);
    assert_eq!(c.a.len() - ind, 6, "indirect-entry layout (41 be imm32)");

    // Chain entry: generation stamp, fuel, then the jitted-entry counter
    // (the dispatcher counts external entries as cache hits; only jumps
    // that bypass it are `jitted`).
    let chain = c.a.len();
    c.a.mov_rm(RAX, R12, off::STAMPS);
    c.a.mov_rm_s8(RAX, RAX, R14);
    c.a.alu_rm(Alu::Cmp, RAX, R12, off::CUR_GEN);
    c.a.jcc(Cc::Ne, reval);
    c.a.alu_ri(Alu::Cmp, RBX, ops.len() as i32);
    c.a.jcc(Cc::B, budget);
    c.a.alu_ri(Alu::Add, R15, 1);

    c.a.bind(body);

    let mut gpc = pc;
    let mut acc = Acc::default();
    let mut ended = false;
    for (i, u) in ops.iter().enumerate() {
        let op_idx = i as u32;
        let next_pc = gpc + u.len as u64;
        match u.op {
            MicroOp::Lui { rd, imm } => {
                if rd != XReg::ZERO {
                    emit_set_x_const(&mut c.a, rd, imm as i64 as u64);
                }
            }
            MicroOp::Auipc { rd, imm } => {
                if rd != XReg::ZERO {
                    emit_set_x_const(&mut c.a, rd, gpc.wrapping_add(imm as i64 as u64));
                }
            }
            MicroOp::Jal { rd, offset } => {
                debug_assert_eq!(i, ops.len() - 1, "control transfer must end the block");
                if rd != XReg::ZERO {
                    emit_set_x_const(&mut c.a, rd, next_pc);
                }
                let exit_acc = Acc {
                    instret: acc.instret + 1,
                    cycles: acc.cycles + u.cost as u64,
                    ..acc
                };
                let target = gpc.wrapping_add(offset as i64 as u64);
                c.emit_exit(exit_acc, ST_TAKEN, target, false);
                ended = true;
            }
            MicroOp::Jalr { rd, rs1, offset } => {
                debug_assert_eq!(i, ops.len() - 1, "control transfer must end the block");
                c.a.mov_rm(RAX, R13, xoff(rs1));
                if offset != 0 {
                    c.a.alu_ri(Alu::Add, RAX, offset);
                }
                c.a.alu_ri(Alu::And, RAX, -2);
                // Link after the target read: rd may alias rs1.
                if rd != XReg::ZERO {
                    emit_set_x_const(&mut c.a, rd, next_pc);
                }
                let exit_acc = Acc {
                    instret: acc.instret + 1,
                    cycles: acc.cycles + u.cost as u64,
                    ..acc
                };
                c.emit_exit_ibt(exit_acc);
                ended = true;
            }
            MicroOp::Branch {
                kind,
                rs1,
                rs2,
                offset,
                taken_cost,
            } => {
                debug_assert_eq!(i, ops.len() - 1, "control transfer must end the block");
                let taken = c.a.label();
                c.a.mov_rm(RAX, R13, xoff(rs1));
                c.a.cmp_rm(RAX, R13, xoff(rs2));
                c.a.jcc(branch_cc(kind), taken);
                let fall_acc = Acc {
                    instret: acc.instret + 1,
                    cycles: acc.cycles + u.cost as u64,
                    ..acc
                };
                c.emit_exit(fall_acc, ST_FALL, next_pc, true);
                c.a.bind(taken);
                let taken_acc = Acc {
                    instret: acc.instret + 1,
                    cycles: acc.cycles + taken_cost as u64,
                    ..acc
                };
                let target = gpc.wrapping_add(offset as i64 as u64);
                c.emit_exit(taken_acc, ST_TAKEN, target, true);
                ended = true;
            }
            MicroOp::Load { .. } => {
                c.emit_mem_fast(u, op_idx, gpc, acc);
                acc.loads += 1;
            }
            MicroOp::Store { .. } => {
                c.emit_mem_fast(u, op_idx, gpc, acc);
                acc.stores += 1;
            }
            MicroOp::Addi { rd, rs1, imm } => {
                if rd != XReg::ZERO {
                    c.emit_opimm(OpImmKind::Addi, rd, rs1, imm);
                }
            }
            MicroOp::Andi { rd, rs1, imm } => {
                if rd != XReg::ZERO {
                    c.emit_opimm(OpImmKind::Andi, rd, rs1, imm);
                }
            }
            MicroOp::Slli { rd, rs1, shamt } => {
                if rd != XReg::ZERO {
                    c.emit_opimm(OpImmKind::Slli, rd, rs1, shamt as i32);
                }
            }
            MicroOp::Srli { rd, rs1, shamt } => {
                if rd != XReg::ZERO {
                    c.emit_opimm(OpImmKind::Srli, rd, rs1, shamt as i32);
                }
            }
            MicroOp::Add { rd, rs1, rs2 } => {
                if rd != XReg::ZERO {
                    c.emit_op(OpKind::Add, rd, rs1, rs2);
                }
            }
            MicroOp::Sub { rd, rs1, rs2 } => {
                if rd != XReg::ZERO {
                    c.emit_op(OpKind::Sub, rd, rs1, rs2);
                }
            }
            MicroOp::Xor { rd, rs1, rs2 } => {
                if rd != XReg::ZERO {
                    c.emit_op(OpKind::Xor, rd, rs1, rs2);
                }
            }
            MicroOp::OpImm { kind, rd, rs1, imm } => {
                if rd != XReg::ZERO && !c.emit_opimm(kind, rd, rs1, imm) {
                    c.emit_pure_call(off::H_OPIMM, op_idx, rd, rs1, None);
                }
            }
            MicroOp::Op { kind, rd, rs1, rs2 } => {
                if rd != XReg::ZERO && !c.emit_op(kind, rd, rs1, rs2) {
                    c.emit_pure_call(off::H_OP, op_idx, rd, rs1, Some(rs2));
                }
            }
            MicroOp::Unary { kind: _, rd, rs1 } => {
                if rd != XReg::ZERO {
                    c.emit_pure_call(off::H_UNARY, op_idx, rd, rs1, None);
                }
            }
            MicroOp::Fence => {}
            MicroOp::FLoad { .. } => {
                c.emit_fmem_fast(u, op_idx, gpc, acc);
                acc.loads += 1;
            }
            MicroOp::FStore { .. } => {
                c.emit_fmem_fast(u, op_idx, gpc, acc);
                acc.stores += 1;
            }
            MicroOp::Generic(_) => {
                // Mirrors the engine's `flush!()` before `Cpu::exec`: the
                // helper drains the deltas into `ExecStats` for real and
                // re-anchors `ctx.pc`, so the compile-time baseline resets.
                c.a.mov_mr(R12, off::CUR_TRACE, R14);
                emit_deltas(&mut c.a, acc, false);
                emit_set_pc(&mut c.a, gpc);
                // The delegate drains and decrements `ctx.fuel` itself:
                // spill the register-carried counters around the call.
                c.a.mov_mr(R12, off::FUEL, RBX);
                c.a.alu_mr(Alu::Add, R12, off::D_CYCLES, RBP);
                c.a.alu_mr(Alu::Add, R12, off::D_JITTED, R15);
                c.a.alu_rr(Alu::Xor, RBP, RBP);
                c.a.alu_rr(Alu::Xor, R15, R15);
                c.a.mov_rr(RDI, R12);
                c.a.mov_ri(RSI, op_idx as u64);
                c.a.call_m(R12, off::H_GENERIC);
                c.a.mov_rm(RBX, R12, off::FUEL);
                c.a.test_rr(RAX, RAX);
                c.a.jcc(Cc::Ne, c.epi_thunk);
                acc = Acc::default();
                gpc = next_pc;
                continue;
            }
        }
        if ended {
            break;
        }
        acc.instret += 1;
        acc.cycles += u.cost as u64;
        gpc = next_pc;
    }
    if !ended {
        c.emit_exit(acc, ST_FALL, gpc, false);
    }

    // Chain-entry failure stubs and the helper-exit thunk. The stubs
    // commit this trace's own entry pc: a patched predecessor's exit
    // slot no longer stores the successor pc, so arrival here (always
    // aimed at this trace's first instruction) re-anchors it.
    c.a.bind(reval);
    emit_set_pc(&mut c.a, pc);
    c.a.mov_ri(RAX, ST_REVAL as u64);
    c.a.jmp_m(R12, off::EPILOGUE);
    c.a.bind(budget);
    emit_set_pc(&mut c.a, pc);
    c.a.mov_ri(RAX, ST_BUDGET as u64);
    c.a.jmp_m(R12, off::EPILOGUE);
    c.a.bind(c.epi_thunk);
    c.a.jmp_m(R12, off::EPILOGUE);

    // Cold slow paths, out of line: the address is still in rax from the
    // fast-path computation.
    let cold = std::mem::take(&mut c.cold);
    for site in cold {
        c.a.bind(site.cold);
        c.a.mov_rr(RSI, RAX);
        c.emit_faultable_call(site.helper, site.op_idx, site.pc, site.acc);
        c.a.jmp(site.rejoin);
    }

    let Compiler { a, exits, .. } = c;
    CompiledTrace {
        code: a.finish(),
        chain,
        ind,
        exits,
    }
}
