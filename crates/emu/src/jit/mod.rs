//! The host-code JIT execution tier.
//!
//! Three tiers share one front end: the decode-cached interpreter, the
//! micro-op engine, and this tier, which template-compiles hot lowered
//! block bodies to x86-64 and runs them out of a W^X-toggled arena (see
//! [`exec`]). There is no optimizing IR: each [`MicroOp`] expands to a
//! fixed instruction template ([`compile`]), and everything the templates
//! cannot express — `Generic` delegates, faultable accesses that miss the
//! region mirror, multi-instruction ALU kinds — calls back into the
//! interpreter's own helpers through a fixed `extern "C"` surface, so the
//! semantics have exactly one implementation.
//!
//! ## Tiering
//!
//! The dispatcher (`Cpu::step_jit`) counts block entries per guest pc;
//! past a deterministic hotness threshold the block body is compiled and
//! entered through [`try_enter`]. Compiled traces chain: a Fall/Taken
//! exit whose successor is also resident is patched into a direct
//! `jmp` to the successor's *chain entry*, which revalidates the
//! generation stamp and fuel on every entry — patching is a pure
//! optimization, never a validity assumption.
//!
//! ## Invalidation contract
//!
//! Traces are validated by the same (generation stamp, region
//! fingerprint) contract as uop block chaining: a stamp match is the fast
//! path; on a mismatch the trace is revalidated against its region
//! fingerprint and either restamped (some *other* region changed) or
//! severed — every patched jump into it is restored to the original
//! exit-slot bytes, byte-for-byte, under the same W^X toggle that wrote
//! it. Severed-by-invalidation pcs pay a doubled re-promotion threshold
//! (hysteresis), so an alternating SMC workload settles into the engine
//! tier instead of ping-ponging compile/sever cycles. Re-promotion after
//! an identical poke recompiles bit-identical code ([`compile`] is a pure
//! function of the lowered ops and the pc), which the SMC regression
//! suite asserts.
//!
//! ## Transparency
//!
//! Architectural effects are identical to the engine tier: register
//! writes go straight to the `Hart` array, memory accesses either hit a
//! per-trace region mirror (bounds-checked against the live region) or
//! call back into the hinted `Memory` paths, and `ExecStats` deltas are
//! batched in the [`JitCtx`] and drained at exits — the same observable
//! boundaries the engine uses. The differential fuzzing oracle holds all
//! four [`crate::ExecMode`]s to full `Obs` equality plus the counter law
//! `hits(interp) == hits(jit) + chained(jit) + jitted(jit)`.

mod asm;
mod compile;
mod exec;

pub use exec::jit_available;

use std::collections::HashMap;
use std::sync::Arc;

use chimera_isa::{FpWidth, LoadKind, StoreKind};
use chimera_trace::TraceEvent;

use crate::bbcache::Block;
use crate::cpu::{block_intact, exec_op, exec_opimm, exec_unary, Cpu, Trap};
use crate::mem::{MemFault, Memory};
use crate::uop::{MicroOp, Uop};

use compile::{
    compile, epilogue_code, patched_exit_bytes, ExitSlot, EXIT_PATCH_JMP_END, EXIT_SLOT_LEN,
    ST_BAIL, ST_BUDGET, ST_FALL, ST_INDIRECT, ST_REVAL, ST_TAKEN, ST_TRAP,
};
use exec::{call_entry, Arena};

/// The register/stack frame emitted traces operate against. The layout is
/// part of the template ABI: every field offset up to `epilogue` is baked
/// into emitted code via [`off`], so fields must not be reordered without
/// recompiling the world (which a process restart does by construction —
/// nothing is persisted).
///
/// The leading `u64` block is the delta accumulator: counters the
/// templates bump with plain `add qword [r12+N], imm` and the runtime
/// drains into `ExecStats` at exits. Retired instructions have no
/// counter of their own: templates only decrement `fuel`, and drains
/// credit `fuel_anchor - fuel` to `ExecStats::instret`.
#[repr(C)]
struct JitCtx {
    /// Guest pc, committed at every observable boundary.
    pc: u64,
    /// Remaining instruction budget. The retired-instruction delta is
    /// *derived* from fuel (`fuel_anchor - fuel` at every drain), so the
    /// templates never maintain a separate instret counter.
    fuel: u64,
    /// Batched `ExecStats::cycles` delta.
    d_cycles: u64,
    /// Batched `ExecStats::loads` delta.
    d_loads: u64,
    /// Batched `ExecStats::stores` delta.
    d_stores: u64,
    /// Batched `ExecStats::branches` delta.
    d_branches: u64,
    /// Batched `ExecStats::indirect_jumps` delta.
    d_indirect: u64,
    /// Batched `CacheStats::jitted` delta (chain entries taken).
    d_jitted: u64,
    /// The code generation every chain-entry stamp check compares against.
    cur_gen: u64,
    /// Trace currently executing (indexes `stamps`/`blocks`).
    cur_trace: u64,
    /// Trace that reached the epilogue (written by the epilogue itself).
    exit_from: u64,
    /// Per-trace generation stamps (`JitTier::stamps`).
    stamps: *const u64,
    /// Per-trace lowered blocks, for helper uop recovery
    /// (`JitTier::block_ptrs`).
    blocks: *const *const Block,
    /// The hart's x-register array.
    xregs: *mut u64,
    /// Load-mirror backing bytes (null until the first helper load).
    ld_base: *mut u8,
    /// Load-mirror region start address.
    ld_start: u64,
    /// Load-mirror limits per log2(width): `addr - start < lim[k]` means
    /// the whole access is in bounds.
    ld_lim: [u64; 4],
    /// Store-mirror backing bytes (writable non-executable regions only,
    /// so SMC bookkeeping is never bypassed).
    st_base: *mut u8,
    /// Store-mirror region start address.
    st_start: u64,
    /// Store-mirror limits per log2(width).
    st_lim: [u64; 4],
    /// Helper entry points, called as `call qword [r12 + H_*]`.
    h_load: u64,
    /// Scalar-store helper.
    h_store: u64,
    /// FP-load helper.
    h_fload: u64,
    /// FP-store helper.
    h_fstore: u64,
    /// `MicroOp::Generic` delegate helper.
    h_generic: u64,
    /// Cold register-immediate ALU helper.
    h_opimm: u64,
    /// Cold register-register ALU helper.
    h_op: u64,
    /// Unary (bit-manipulation) helper.
    h_unary: u64,
    /// Absolute address of the shared epilogue (arena offset 0).
    epilogue: u64,
    /// The hart's FP register file (raw bits; NaN boxing is the
    /// template's job, mirroring `jit_fload`).
    fregs: *mut u64,
    /// Indirect-branch target table keys: guest pcs, direct-mapped by
    /// `(pc >> 1) & (IBT_LEN - 1)`, empty slots hold `u64::MAX`.
    ibt_keys: *const u64,
    /// Indirect-branch target table values: absolute addresses of the
    /// matching traces' indirect entries.
    ibt_vals: *const u64,
    // --- Rust-only tail: never touched by emitted code. ---
    /// `fuel` at the last drain; `fuel_anchor - fuel` is the
    /// scalar-retired count the next drain owes `ExecStats::instret`.
    fuel_anchor: u64,
    /// The owning core, for helper call-outs.
    cpu: *mut Cpu,
    /// Guest memory, for helper call-outs.
    mem: *mut Memory,
    /// A trap recorded by a helper (drives the `ST_TRAP` exit).
    trap: Option<Trap>,
}

/// `JitCtx` field offsets for the emitter. Emitted code addresses the
/// context exclusively as `[r12 + off::X]`.
mod off {
    use super::JitCtx;
    use std::mem::offset_of;

    pub(super) const PC: i32 = offset_of!(JitCtx, pc) as i32;
    pub(super) const FUEL: i32 = offset_of!(JitCtx, fuel) as i32;
    pub(super) const D_CYCLES: i32 = offset_of!(JitCtx, d_cycles) as i32;
    pub(super) const D_LOADS: i32 = offset_of!(JitCtx, d_loads) as i32;
    pub(super) const D_STORES: i32 = offset_of!(JitCtx, d_stores) as i32;
    pub(super) const D_BRANCHES: i32 = offset_of!(JitCtx, d_branches) as i32;
    pub(super) const D_INDIRECT: i32 = offset_of!(JitCtx, d_indirect) as i32;
    pub(super) const D_JITTED: i32 = offset_of!(JitCtx, d_jitted) as i32;
    pub(super) const CUR_GEN: i32 = offset_of!(JitCtx, cur_gen) as i32;
    pub(super) const CUR_TRACE: i32 = offset_of!(JitCtx, cur_trace) as i32;
    pub(super) const EXIT_FROM: i32 = offset_of!(JitCtx, exit_from) as i32;
    pub(super) const STAMPS: i32 = offset_of!(JitCtx, stamps) as i32;
    pub(super) const XREGS: i32 = offset_of!(JitCtx, xregs) as i32;
    pub(super) const LD_BASE: i32 = offset_of!(JitCtx, ld_base) as i32;
    pub(super) const LD_START: i32 = offset_of!(JitCtx, ld_start) as i32;
    pub(super) const LD_LIM: i32 = offset_of!(JitCtx, ld_lim) as i32;
    pub(super) const ST_BASE: i32 = offset_of!(JitCtx, st_base) as i32;
    pub(super) const ST_START: i32 = offset_of!(JitCtx, st_start) as i32;
    pub(super) const ST_LIM: i32 = offset_of!(JitCtx, st_lim) as i32;
    pub(super) const H_LOAD: i32 = offset_of!(JitCtx, h_load) as i32;
    pub(super) const H_STORE: i32 = offset_of!(JitCtx, h_store) as i32;
    pub(super) const H_FLOAD: i32 = offset_of!(JitCtx, h_fload) as i32;
    pub(super) const H_FSTORE: i32 = offset_of!(JitCtx, h_fstore) as i32;
    pub(super) const H_GENERIC: i32 = offset_of!(JitCtx, h_generic) as i32;
    pub(super) const H_OPIMM: i32 = offset_of!(JitCtx, h_opimm) as i32;
    pub(super) const H_OP: i32 = offset_of!(JitCtx, h_op) as i32;
    pub(super) const H_UNARY: i32 = offset_of!(JitCtx, h_unary) as i32;
    pub(super) const EPILOGUE: i32 = offset_of!(JitCtx, epilogue) as i32;
    pub(super) const FREGS: i32 = offset_of!(JitCtx, fregs) as i32;
    pub(super) const IBT_KEYS: i32 = offset_of!(JitCtx, ibt_keys) as i32;
    pub(super) const IBT_VALS: i32 = offset_of!(JitCtx, ibt_vals) as i32;
}

/// Indirect-branch target table size (power of two). Direct-mapped:
/// collisions just evict, severs remove, flushes clear — the table is a
/// pure optimization and every hit still runs the target's chain-entry
/// stamp and fuel checks.
pub(super) const IBT_LEN: usize = 2048;

/// The direct-mapped IBT slot for a guest pc (instructions are at least
/// 2-byte aligned, so bit 0 carries no information).
fn ibt_slot(pc: u64) -> usize {
    (pc >> 1) as usize & (IBT_LEN - 1)
}

/// Flushes the batched deltas into `ExecStats`/`CacheStats` and
/// re-anchors the architectural pc — the JIT's equivalent of the engine's
/// `flush!()`. Idempotent: every delta is zeroed as it lands.
fn drain(ctx: &mut JitCtx, cpu: &mut Cpu) {
    cpu.stats.instret += ctx.fuel_anchor - ctx.fuel;
    ctx.fuel_anchor = ctx.fuel;
    cpu.stats.cycles += ctx.d_cycles;
    cpu.stats.loads += ctx.d_loads;
    cpu.stats.stores += ctx.d_stores;
    cpu.stats.branches += ctx.d_branches;
    cpu.stats.indirect_jumps += ctx.d_indirect;
    cpu.cache.stats.jitted += ctx.d_jitted;
    ctx.d_cycles = 0;
    ctx.d_loads = 0;
    ctx.d_stores = 0;
    ctx.d_branches = 0;
    ctx.d_indirect = 0;
    ctx.d_jitted = 0;
    cpu.hart.pc = ctx.pc;
}

/// Records a memory fault and selects the trap exit. Mirrors the engine's
/// `memtrap!`: `ctx.pc` already sits on the faulting op (committed before
/// the call-out), which contributes nothing to the stats.
fn fault_exit(ctx: &mut JitCtx, fault: MemFault) -> u64 {
    ctx.trap = Some(Trap::Mem { pc: ctx.pc, fault });
    ST_TRAP as u64
}

/// Per-width fast-path limits for a region of `len` bytes: an access of
/// width `1 << k` at `start + d` is fully in bounds iff `d < lim[k]`.
fn mirror_limits(len: usize) -> [u64; 4] {
    let mut lim = [0u64; 4];
    for (k, slot) in lim.iter_mut().enumerate() {
        let w = 1usize << k;
        *slot = if len >= w { (len - w + 1) as u64 } else { 0 };
    }
    lim
}

/// Re-aims the load mirror at the region containing `addr`, if readable.
fn refresh_load_mirror(ctx: &mut JitCtx, mem: &mut Memory, addr: u64) {
    if let Some((base, start, len)) = mem.region_raw(addr, false) {
        ctx.ld_base = base;
        ctx.ld_start = start;
        ctx.ld_lim = mirror_limits(len);
    }
}

/// Re-aims the store mirror at the region containing `addr`. Only
/// writable *non-executable* regions are mirrored — stores to executable
/// regions must keep taking the `write_hinted` slow path so the
/// self-modifying-code generation bookkeeping is never bypassed.
fn refresh_store_mirror(ctx: &mut JitCtx, mem: &mut Memory, addr: u64) {
    if let Some((base, start, len)) = mem.region_raw(addr, true) {
        ctx.st_base = base;
        ctx.st_start = start;
        ctx.st_lim = mirror_limits(len);
    }
}

/// The lowered block of the currently executing trace.
///
/// # Safety
///
/// `ctx.blocks`/`ctx.cur_trace` must describe live `JitTier` state (true
/// for the duration of [`execute`]).
unsafe fn ctx_block<'a>(ctx: &JitCtx) -> &'a Block {
    unsafe { &**ctx.blocks.add(ctx.cur_trace as usize) }
}

/// The uop a helper call-out was compiled from.
///
/// # Safety
///
/// See [`ctx_block`]; `op_idx` must index its `ops` (guaranteed by the
/// emitter, which bakes the index into the call site).
unsafe fn ctx_uop(ctx: &JitCtx, op_idx: u64) -> Uop {
    unsafe { ctx_block(ctx) }.ops[op_idx as usize]
}

/// Scalar-load call-out (mirror miss). Performs the access through the
/// hinted path, writes `rd`, re-aims the mirror, and returns 0 — or the
/// trap exit status on a fault.
///
/// # Safety
///
/// Called from emitted code with a live [`JitCtx`].
unsafe extern "C" fn jit_load(ctx: *mut JitCtx, addr: u64, op_idx: u64) -> u64 {
    let ctx = unsafe { &mut *ctx };
    let cpu = unsafe { &mut *ctx.cpu };
    let mem = unsafe { &mut *ctx.mem };
    let MicroOp::Load { kind, rd, .. } = unsafe { ctx_uop(ctx, op_idx) }.op else {
        unreachable!("load helper compiled against a non-load uop");
    };
    let hint = &mut cpu.hints.load;
    macro_rules! ld {
        ($n:literal) => {
            match mem.read_hinted::<$n>(hint, addr) {
                Ok(b) => b,
                Err(fault) => return fault_exit(ctx, fault),
            }
        };
    }
    let v = match kind {
        LoadKind::Lb => ld!(1)[0] as i8 as i64 as u64,
        LoadKind::Lbu => ld!(1)[0] as u64,
        LoadKind::Lh => i16::from_le_bytes(ld!(2)) as i64 as u64,
        LoadKind::Lhu => u16::from_le_bytes(ld!(2)) as u64,
        LoadKind::Lw => i32::from_le_bytes(ld!(4)) as i64 as u64,
        LoadKind::Lwu => u32::from_le_bytes(ld!(4)) as u64,
        LoadKind::Ld => u64::from_le_bytes(ld!(8)),
    };
    cpu.hart.set_x(rd, v);
    refresh_load_mirror(ctx, mem, addr);
    0
}

/// Scalar-store call-out (mirror miss). On success the emitted constants
/// after the call account the op; on a mid-trace self-invalidation this
/// helper accounts the completed store itself and bails.
///
/// # Safety
///
/// Called from emitted code with a live [`JitCtx`].
unsafe extern "C" fn jit_store(ctx: *mut JitCtx, addr: u64, op_idx: u64) -> u64 {
    let ctx = unsafe { &mut *ctx };
    let cpu = unsafe { &mut *ctx.cpu };
    let mem = unsafe { &mut *ctx.mem };
    let block = unsafe { ctx_block(ctx) };
    let u = block.ops[op_idx as usize];
    let MicroOp::Store { kind, rs2, .. } = u.op else {
        unreachable!("store helper compiled against a non-store uop");
    };
    let gen_before = mem.code_generation();
    let v = cpu.hart.get_x(rs2);
    let hint = &mut cpu.hints.store;
    let wrote = match kind {
        StoreKind::Sb => mem.write_hinted(hint, addr, &[v as u8]),
        StoreKind::Sh => mem.write_hinted(hint, addr, &(v as u16).to_le_bytes()),
        StoreKind::Sw => mem.write_hinted(hint, addr, &(v as u32).to_le_bytes()),
        StoreKind::Sd => mem.write_hinted(hint, addr, &v.to_le_bytes()),
    };
    if let Err(fault) = wrote {
        return fault_exit(ctx, fault);
    }
    refresh_store_mirror(ctx, mem, addr);
    if mem.code_generation() != gen_before {
        if !block_intact(mem, block) {
            // The store retired but its compile-time constants sit after
            // the call and will never run; account it here, with pc on
            // the next op — the engine's Bail semantics exactly. (The
            // fuel decrement carries the instret credit.)
            ctx.d_stores += 1;
            ctx.d_cycles += u.cost as u64;
            ctx.fuel -= 1;
            ctx.pc += u.len as u64;
            return ST_BAIL as u64;
        }
        // Some *other* executable region changed: this trace's bytes are
        // intact, but every resident entry stamp is now stale. Chasing
        // the new generation forces chain entries through revalidation
        // instead of running potentially-invalidated successors.
        ctx.cur_gen = mem.code_generation();
    }
    0
}

/// FP-load call-out (mirror miss). Performs the access, NaN-boxes single
/// loads, and re-aims the load mirror so subsequent FP fast paths hit.
///
/// # Safety
///
/// Called from emitted code with a live [`JitCtx`].
unsafe extern "C" fn jit_fload(ctx: *mut JitCtx, addr: u64, op_idx: u64) -> u64 {
    let ctx = unsafe { &mut *ctx };
    let cpu = unsafe { &mut *ctx.cpu };
    let mem = unsafe { &mut *ctx.mem };
    let MicroOp::FLoad { width, frd, .. } = unsafe { ctx_uop(ctx, op_idx) }.op else {
        unreachable!("fp-load helper compiled against a non-fp-load uop");
    };
    let hint = &mut cpu.hints.load;
    match width {
        FpWidth::S => match mem.read_hinted::<4>(hint, addr) {
            Ok(b) => cpu
                .hart
                .set_f(frd, 0xffff_ffff_0000_0000 | u32::from_le_bytes(b) as u64),
            Err(fault) => return fault_exit(ctx, fault),
        },
        FpWidth::D => match mem.read_hinted::<8>(hint, addr) {
            Ok(b) => cpu.hart.set_f(frd, u64::from_le_bytes(b)),
            Err(fault) => return fault_exit(ctx, fault),
        },
    }
    refresh_load_mirror(ctx, mem, addr);
    0
}

/// FP-store call-out; SMC tail identical to [`jit_store`].
///
/// # Safety
///
/// Called from emitted code with a live [`JitCtx`].
unsafe extern "C" fn jit_fstore(ctx: *mut JitCtx, addr: u64, op_idx: u64) -> u64 {
    let ctx = unsafe { &mut *ctx };
    let cpu = unsafe { &mut *ctx.cpu };
    let mem = unsafe { &mut *ctx.mem };
    let block = unsafe { ctx_block(ctx) };
    let u = block.ops[op_idx as usize];
    let MicroOp::FStore { width, frs2, .. } = u.op else {
        unreachable!("fp-store helper compiled against a non-fp-store uop");
    };
    let gen_before = mem.code_generation();
    let v = cpu.hart.get_f(frs2);
    let hint = &mut cpu.hints.store;
    let wrote = match width {
        FpWidth::S => mem.write_hinted(hint, addr, &(v as u32).to_le_bytes()),
        FpWidth::D => mem.write_hinted(hint, addr, &v.to_le_bytes()),
    };
    if let Err(fault) = wrote {
        return fault_exit(ctx, fault);
    }
    refresh_store_mirror(ctx, mem, addr);
    if mem.code_generation() != gen_before {
        if !block_intact(mem, block) {
            ctx.d_stores += 1;
            ctx.d_cycles += u.cost as u64;
            ctx.fuel -= 1;
            ctx.pc += u.len as u64;
            return ST_BAIL as u64;
        }
        ctx.cur_gen = mem.code_generation();
    }
    0
}

/// `MicroOp::Generic` delegate: drains the deltas (the engine's
/// `flush!()` before `Cpu::exec`), executes through the interpreter, and
/// re-anchors the context from the hart.
///
/// # Safety
///
/// Called from emitted code with a live [`JitCtx`].
unsafe extern "C" fn jit_generic(ctx: *mut JitCtx, op_idx: u64) -> u64 {
    let ctx = unsafe { &mut *ctx };
    let cpu = unsafe { &mut *ctx.cpu };
    let mem = unsafe { &mut *ctx.mem };
    let block = unsafe { ctx_block(ctx) };
    let u = block.ops[op_idx as usize];
    let MicroOp::Generic(inst) = u.op else {
        unreachable!("generic helper compiled against a specialized uop");
    };
    let gen_before = mem.code_generation();
    drain(ctx, cpu);
    match cpu.exec(mem, inst, u.len as u64) {
        Err(t) => {
            ctx.trap = Some(t);
            ST_TRAP as u64
        }
        Ok(()) => {
            // `Cpu::exec` accounted pc/instret/cycles itself; only the
            // fuel and the context's pc anchor are ours. Re-anchor so
            // the next drain doesn't double-credit this instruction.
            ctx.fuel -= 1;
            ctx.fuel_anchor = ctx.fuel;
            ctx.pc = cpu.hart.pc;
            if mem.code_generation() != gen_before {
                if u.is_store && !block_intact(mem, block) {
                    return ST_BAIL as u64;
                }
                ctx.cur_gen = mem.code_generation();
            }
            0
        }
    }
}

/// Cold register-immediate ALU call-out (kinds without a template).
///
/// # Safety
///
/// Called from emitted code with a live [`JitCtx`].
unsafe extern "C" fn jit_opimm(ctx: *mut JitCtx, a: u64, op_idx: u64) -> u64 {
    let ctx = unsafe { &*ctx };
    let MicroOp::OpImm { kind, imm, .. } = unsafe { ctx_uop(ctx, op_idx) }.op else {
        unreachable!("opimm helper compiled against a non-opimm uop");
    };
    exec_opimm(kind, a, imm)
}

/// Cold register-register ALU call-out (kinds without a template).
///
/// # Safety
///
/// Called from emitted code with a live [`JitCtx`].
unsafe extern "C" fn jit_op(ctx: *mut JitCtx, a: u64, b: u64, op_idx: u64) -> u64 {
    let ctx = unsafe { &*ctx };
    let MicroOp::Op { kind, .. } = unsafe { ctx_uop(ctx, op_idx) }.op else {
        unreachable!("op helper compiled against a non-op uop");
    };
    exec_op(kind, a, b)
}

/// Unary bit-manipulation call-out.
///
/// # Safety
///
/// Called from emitted code with a live [`JitCtx`].
unsafe extern "C" fn jit_unary(ctx: *mut JitCtx, a: u64, op_idx: u64) -> u64 {
    let ctx = unsafe { &*ctx };
    let MicroOp::Unary { kind, .. } = unsafe { ctx_uop(ctx, op_idx) }.op else {
        unreachable!("unary helper compiled against a non-unary uop");
    };
    exec_unary(kind, a)
}

/// Dispatcher entries of a valid cached block before its body is
/// template-compiled. Deterministic — it depends only on the execution
/// schedule, never on wall time, hart count or allocation state.
const DEFAULT_THRESHOLD: u32 = 16;

/// Executable arena size. A full arena flushes every trace and restarts;
/// 4 MiB is far above what the bench zoo ever compiles.
const ARENA_LEN: usize = 4 << 20;

/// Cap on the demotion-hysteresis threshold multiplier.
const MAX_PENALTY: u32 = 1 << 20;

/// One resident compiled trace.
#[derive(Debug)]
struct Trace {
    /// Guest pc of the block's first instruction (the promotion key).
    pc: u64,
    /// (region start, region generation) at compile time.
    fp: (u64, u64),
    /// The lowered block the trace was compiled from; helpers recover
    /// their uops through [`JitCtx::blocks`], so this Arc pins it.
    block: Arc<Block>,
    /// Unpatched code bytes: the sever-restore source and the
    /// byte-identity witness for the SMC regression suite.
    code: Vec<u8>,
    /// Arena offset of the external entry.
    code_off: usize,
    /// Chain-entry offset relative to `code_off`.
    chain: usize,
    /// Indirect-entry offset relative to `code_off` (the IBT target).
    ind: usize,
    /// Patchable exits: `[fall, taken]`.
    exits: [Option<ExitSlot>; 2],
    /// Which exits currently hold a patched direct jump.
    patched: [bool; 2],
    /// Predecessors `(trace, edge)` patched to jump into this trace.
    in_edges: Vec<(u32, u8)>,
    /// Severed: unreachable (stamp poisoned, predecessors unpatched,
    /// unmapped from the promotion table); its arena bytes are dead until
    /// the next flush.
    dead: bool,
}

/// Per-core JIT tier state: the executable arena, resident traces, and
/// the deterministic tiering policy (hotness counters + demotion
/// hysteresis).
#[derive(Debug)]
pub(crate) struct JitTier {
    /// Whether `ExecMode::Jit` is selected. Even when set, the tier stays
    /// inert if the host cannot map executable pages.
    pub(crate) enabled: bool,
    arena: Option<Arena>,
    /// The host refused an executable mapping once; never retried.
    broken: bool,
    traces: Vec<Trace>,
    /// Promotion table: guest pc of a live trace → trace index.
    map: HashMap<u64, u32>,
    /// Per-trace generation stamps (`u64::MAX` poisons severed traces).
    stamps: Vec<u64>,
    /// Per-trace `Block` pointers for helper uop recovery (Arc-pinned by
    /// the matching [`Trace::block`]).
    block_ptrs: Vec<*const Block>,
    /// Dispatcher-entry counts per not-yet-promoted pc.
    heat: HashMap<u64, u32>,
    /// Per-pc threshold multiplier, doubled on each
    /// sever-by-invalidation (demotion hysteresis).
    penalty: HashMap<u64, u32>,
    threshold: u32,
    /// Lifetime promotion count (monotonic; survives flushes).
    compiled: u64,
    /// Indirect-branch target table keys (see [`JitCtx::ibt_keys`]).
    ibt_keys: Box<[u64; IBT_LEN]>,
    /// Indirect-branch target table values (host indirect-entry
    /// addresses; dangling after an arena reset, so flushes clear keys).
    ibt_vals: Box<[u64; IBT_LEN]>,
}

// Raw pointers into our own Arc-pinned allocations; the tier is plain
// owned data and never shares them.
unsafe impl Send for JitTier {}

impl Clone for JitTier {
    /// Cloning a core does not clone resident host code: the clone keeps
    /// the tier policy and starts cold, the same way a cloned cache
    /// starts re-warming.
    fn clone(&self) -> Self {
        JitTier {
            enabled: self.enabled,
            threshold: self.threshold,
            ..JitTier::new()
        }
    }
}

impl JitTier {
    /// An empty, disabled tier.
    pub(crate) fn new() -> Self {
        JitTier {
            enabled: false,
            arena: None,
            broken: false,
            traces: Vec::new(),
            map: HashMap::new(),
            stamps: Vec::new(),
            block_ptrs: Vec::new(),
            heat: HashMap::new(),
            penalty: HashMap::new(),
            threshold: DEFAULT_THRESHOLD,
            compiled: 0,
            ibt_keys: Box::new([u64::MAX; IBT_LEN]),
            ibt_vals: Box::new([0; IBT_LEN]),
        }
    }

    /// Publishes `pc -> indirect-entry address` in the IBT (evicting any
    /// colliding slot — direct-mapped).
    fn ibt_insert(&mut self, pc: u64, addr: u64) {
        let s = ibt_slot(pc);
        self.ibt_keys[s] = pc;
        self.ibt_vals[s] = addr;
    }

    /// Removes `pc` from the IBT if its slot still belongs to it.
    fn ibt_remove(&mut self, pc: u64) {
        let s = ibt_slot(pc);
        if self.ibt_keys[s] == pc {
            self.ibt_keys[s] = u64::MAX;
        }
    }

    /// Drops every resident trace and reinstalls the shared epilogue.
    /// Tiering (heat/penalty) state survives; [`JitTier::reset`] wipes it.
    fn flush_all(&mut self) {
        self.traces.clear();
        self.map.clear();
        self.stamps.clear();
        self.block_ptrs.clear();
        // Every IBT value dangles once the arena resets.
        self.ibt_keys.fill(u64::MAX);
        if let Some(arena) = self.arena.as_mut() {
            arena.reset();
            let epi = epilogue_code();
            let off = arena.with_writable(|w| w.alloc(&epi));
            assert_eq!(off, Some(0), "shared epilogue must sit at arena offset 0");
        }
    }

    /// Full tier reset: traces *and* tiering policy state. Mode switches
    /// go through here so promotion state never carries across.
    pub(crate) fn reset(&mut self) {
        self.flush_all();
        self.heat.clear();
        self.penalty.clear();
    }

    /// Maps the executable arena on first use. `false` means the host
    /// cannot run this tier (no executable pages); the refusal is
    /// remembered and never retried.
    fn ensure_arena(&mut self) -> bool {
        if self.arena.is_some() {
            return true;
        }
        if self.broken || !jit_available() {
            return false;
        }
        match Arena::new(ARENA_LEN) {
            Some(arena) => {
                self.arena = Some(arena);
                self.flush_all();
                true
            }
            None => {
                self.broken = true;
                false
            }
        }
    }

    /// Copies compiled code into the arena. A full arena flushes every
    /// trace and retries once (a single trace always fits a fresh arena).
    fn arena_alloc(&mut self, code: &[u8]) -> Option<usize> {
        let arena = self.arena.as_mut()?;
        if let Some(off) = arena.with_writable(|w| w.alloc(code)) {
            return Some(off);
        }
        self.flush_all();
        self.arena.as_mut()?.with_writable(|w| w.alloc(code))
    }

    /// The promotion threshold for `pc`, demotion hysteresis included.
    fn effective_threshold(&self, pc: u64) -> u32 {
        self.threshold
            .saturating_mul(self.penalty.get(&pc).copied().unwrap_or(1))
    }

    /// Severs trace `t`: poisons its stamp, unmaps it from the promotion
    /// table, and restores every patched predecessor exit slot to its
    /// original bytes (one W^X toggle for the whole batch).
    fn sever(&mut self, t: usize) {
        if self.traces[t].dead {
            return;
        }
        let in_edges = std::mem::take(&mut self.traces[t].in_edges);
        let mut restores: Vec<(usize, [u8; EXIT_SLOT_LEN])> = Vec::new();
        for (pred, e) in in_edges {
            let p = &mut self.traces[pred as usize];
            let e = e as usize;
            if p.dead || !p.patched[e] {
                continue;
            }
            let slot = p.exits[e].expect("patched edge always has a slot");
            let mut orig = [0u8; EXIT_SLOT_LEN];
            orig.copy_from_slice(&p.code[slot.off..slot.off + EXIT_SLOT_LEN]);
            restores.push((p.code_off + slot.off, orig));
            p.patched[e] = false;
        }
        if !restores.is_empty() {
            let arena = self.arena.as_mut().expect("severing requires an arena");
            arena.with_writable(|w| {
                for (off, bytes) in &restores {
                    w.write_at(*off, bytes);
                }
            });
        }
        let tr = &mut self.traces[t];
        tr.dead = true;
        let pc = tr.pc;
        self.stamps[t] = u64::MAX;
        self.map.remove(&pc);
        self.ibt_remove(pc);
    }

    /// [`JitTier::sever`] plus demotion hysteresis: the pc's re-promotion
    /// threshold doubles and its heat restarts from zero, so alternating
    /// SMC workloads settle in the engine tier instead of ping-ponging.
    fn sever_with_penalty(&mut self, t: usize) {
        let pc = self.traces[t].pc;
        self.sever(t);
        let p = self.penalty.entry(pc).or_insert(1);
        *p = p.saturating_mul(2).min(MAX_PENALTY);
        self.heat.insert(pc, 0);
    }

    /// The unpatched compiled bytes for the live trace at `pc`
    /// (introspection for the SMC byte-identity regressions).
    pub(crate) fn trace_bytes(&self, pc: u64) -> Option<Vec<u8>> {
        let t = *self.map.get(&pc)? as usize;
        Some(self.traces[t].code.clone())
    }

    /// The dispatcher-entry count accumulated toward promoting `pc`.
    pub(crate) fn hotness(&self, pc: u64) -> u32 {
        self.heat.get(&pc).copied().unwrap_or(0)
    }

    /// Lifetime promotion count.
    pub(crate) fn compiled(&self) -> u64 {
        self.compiled
    }

    /// Overrides the base promotion threshold (tests and benches).
    pub(crate) fn set_threshold(&mut self, threshold: u32) {
        self.threshold = threshold;
    }
}

/// Attempts to run the block at `pc` through the JIT tier. `None` means
/// the tier declines (cold, host unsupported, stale trace severed, or
/// not enough budget to fund the body) and the caller executes through
/// the engine instead. `Some` carries the full engine-equivalent result.
pub(crate) fn try_enter(
    cpu: &mut Cpu,
    mem: &mut Memory,
    budget: u64,
    block: &Arc<Block>,
    pc: u64,
) -> Option<Result<u64, Trap>> {
    if !cpu.jit.enabled || !cpu.jit.ensure_arena() {
        return None;
    }
    let gen = mem.code_generation();
    let t = match cpu.jit.map.get(&pc).copied() {
        Some(t) => {
            let t = t as usize;
            if cpu.jit.stamps[t] == gen {
                t
            } else if mem.code_fingerprint(pc) == Some(cpu.jit.traces[t].fp) {
                // Executable bytes changed somewhere else; this trace's
                // region is untouched, so restamp — validate_link's slow
                // path, verbatim.
                cpu.jit.stamps[t] = gen;
                t
            } else {
                cpu.jit.sever_with_penalty(t);
                return None;
            }
        }
        None => {
            let threshold = cpu.jit.effective_threshold(pc);
            let heat = cpu.jit.heat.entry(pc).or_insert(0);
            *heat = heat.saturating_add(1);
            if *heat < threshold {
                return None;
            }
            let fp = mem.code_fingerprint(pc)?;
            promote(cpu, block, pc, fp, gen)?
        }
    };
    if budget < block.ops.len() as u64 {
        // Not enough fuel to fund the whole body; the engine's partial
        // execution handles the tail exactly.
        return None;
    }
    Some(execute(cpu, mem, budget, t))
}

/// Compiles `block` and installs the trace. `None` only when the arena
/// cannot hold it even after a flush.
fn promote(cpu: &mut Cpu, block: &Arc<Block>, pc: u64, fp: (u64, u64), gen: u64) -> Option<usize> {
    let compiled = compile(&block.ops, pc);
    let bytes = compiled.code.len() as u64;
    let tier = &mut cpu.jit;
    // Allocate before indexing: a full arena flushes every trace, so the
    // new index is only valid afterwards.
    let code_off = tier.arena_alloc(&compiled.code)?;
    let t = tier.traces.len();
    // Stamp the trace index into the indirect entry's placeholder (the
    // stored `code` keeps the placeholder, preserving the byte-identity
    // witness), then publish the entry for IBT probes.
    let ind_addr = {
        let arena = tier.arena.as_mut().expect("promotion requires an arena");
        arena.with_writable(|w| {
            w.write_at(code_off + compiled.ind + 2, &(t as u32).to_le_bytes());
        });
        arena.addr(code_off + compiled.ind) as u64
    };
    tier.traces.push(Trace {
        pc,
        fp,
        block: Arc::clone(block),
        code: compiled.code,
        code_off,
        chain: compiled.chain,
        ind: compiled.ind,
        exits: compiled.exits,
        patched: [false; 2],
        in_edges: Vec::new(),
        dead: false,
    });
    tier.stamps.push(gen);
    tier.block_ptrs.push(Arc::as_ptr(&tier.traces[t].block));
    tier.map.insert(pc, t as u32);
    tier.heat.remove(&pc);
    tier.ibt_insert(pc, ind_addr);
    tier.compiled += 1;
    if cpu.tracer.is_enabled() {
        cpu.tracer
            .record(cpu.stats.cycles, TraceEvent::TierPromote { pc, bytes });
        cpu.tracer.count("emu.blocks_jitted", 1);
    }
    Some(t)
}

/// Runs trace `t` (and everything it chains into) until an exit, then
/// reconciles the context back into the core. Returns the instructions
/// retired, exactly as `exec_lowered` would have.
fn execute(cpu: &mut Cpu, mem: &mut Memory, budget: u64, t: usize) -> Result<u64, Trap> {
    let cpu_ptr: *mut Cpu = cpu;
    let mem_ptr: *mut Memory = mem;
    let pc = cpu.hart.pc;
    let xregs = cpu.hart.x_ptr();
    let fregs = cpu.hart.f_ptr();
    let gen = mem.code_generation();
    let tier = &cpu.jit;
    let arena = tier.arena.as_ref().expect("executing without an arena");
    let entry = arena.addr(tier.traces[t].code_off);
    let epilogue = arena.addr(0) as u64;
    let mut ctx = JitCtx {
        pc,
        fuel: budget,
        d_cycles: 0,
        d_loads: 0,
        d_stores: 0,
        d_branches: 0,
        d_indirect: 0,
        d_jitted: 0,
        cur_gen: gen,
        cur_trace: t as u64,
        exit_from: t as u64,
        stamps: tier.stamps.as_ptr(),
        blocks: tier.block_ptrs.as_ptr(),
        xregs,
        ld_base: std::ptr::null_mut(),
        ld_start: 0,
        ld_lim: [0; 4],
        st_base: std::ptr::null_mut(),
        st_start: 0,
        st_lim: [0; 4],
        h_load: jit_load as *const () as usize as u64,
        h_store: jit_store as *const () as usize as u64,
        h_fload: jit_fload as *const () as usize as u64,
        h_fstore: jit_fstore as *const () as usize as u64,
        h_generic: jit_generic as *const () as usize as u64,
        h_opimm: jit_opimm as *const () as usize as u64,
        h_op: jit_op as *const () as usize as u64,
        h_unary: jit_unary as *const () as usize as u64,
        epilogue,
        fregs,
        ibt_keys: tier.ibt_keys.as_ptr(),
        ibt_vals: tier.ibt_vals.as_ptr(),
        fuel_anchor: budget,
        cpu: cpu_ptr,
        mem: mem_ptr,
        trap: None,
    };
    // SAFETY: `entry` is the external entry of a live, stamp-validated
    // trace in the sealed arena; the context's raw pointers (cpu, mem,
    // xregs, stamp/block tables) all outlive the call, and nothing else
    // touches the core or memory while guest code runs — helpers are the
    // only reentry and they go through the context.
    let status = unsafe { call_entry(entry, (&mut ctx as *mut JitCtx).cast(), t as u32) } as u32;
    let retired = budget - ctx.fuel;
    drain(&mut ctx, cpu);
    cpu.cache.stats.jit_execs += 1;
    if cpu.tracer.is_enabled() {
        cpu.tracer.count("emu.jit_exits", 1);
    }
    match status {
        ST_TRAP => Err(ctx.trap.take().expect("trap exit without a recorded trap")),
        ST_FALL | ST_TAKEN => {
            try_patch(cpu, mem, ctx.exit_from as usize, status);
            Ok(retired)
        }
        ST_REVAL => {
            revalidate(cpu, mem, ctx.exit_from as usize);
            Ok(retired)
        }
        ST_INDIRECT => {
            // An IBT miss: either a cold target or a direct-mapped
            // eviction. If the target is resident and current, republish
            // it so the next transfer to it stays in-arena — without
            // this, two colliding return sites would demote each other
            // to dispatcher round trips forever.
            let tier = &mut cpu.jit;
            if let Some(&s) = tier.map.get(&ctx.pc) {
                let s = s as usize;
                if !tier.traces[s].dead && tier.stamps[s] == mem.code_generation() {
                    let tr = &tier.traces[s];
                    let addr = {
                        let arena = tier.arena.as_ref().expect("live trace without an arena");
                        arena.addr(tr.code_off + tr.ind) as u64
                    };
                    tier.ibt_insert(ctx.pc, addr);
                }
            }
            Ok(retired)
        }
        ST_BAIL | ST_BUDGET => Ok(retired),
        _ => unreachable!("unknown jit exit status {status}"),
    }
}

/// After a Fall/Taken exit, compiles the control edge into a direct jump:
/// the exit slot of `from` becomes `mov r14d, succ; jmp succ.chain`. The
/// chain entry re-checks stamp and fuel on every entry, so patching is a
/// pure optimization — it can never extend a stale trace's life.
fn try_patch(cpu: &mut Cpu, mem: &Memory, from: usize, status: u32) {
    let tier = &mut cpu.jit;
    let e = usize::from(status == ST_TAKEN);
    if tier.traces[from].dead || tier.traces[from].patched[e] {
        return;
    }
    let Some(slot) = tier.traces[from].exits[e] else {
        return;
    };
    let Some(&succ) = tier.map.get(&slot.target) else {
        return;
    };
    let succ = succ as usize;
    if tier.traces[succ].dead || tier.stamps[succ] != mem.code_generation() {
        return;
    }
    let slot_off = tier.traces[from].code_off + slot.off;
    let succ_entry = tier.traces[succ].code_off + tier.traces[succ].chain;
    let arena = tier.arena.as_mut().expect("patching requires an arena");
    let rel = arena.addr(succ_entry) as i64 - (arena.addr(slot_off) + EXIT_PATCH_JMP_END) as i64;
    let rel = i32::try_from(rel).expect("arena spans never exceed rel32");
    let bytes = patched_exit_bytes(succ as u32, rel);
    arena.with_writable(|w| w.write_at(slot_off, &bytes));
    tier.traces[from].patched[e] = true;
    tier.traces[succ].in_edges.push((from as u32, e as u8));
}

/// Handles a chain-entry stamp miss on trace `t`: restamp when its region
/// is untouched (some other region changed), sever with the demotion
/// penalty otherwise — `Cpu::validate_link`'s rules for compiled traces.
fn revalidate(cpu: &mut Cpu, mem: &mut Memory, t: usize) {
    let tier = &mut cpu.jit;
    if tier.traces[t].dead {
        return;
    }
    if mem.code_fingerprint(tier.traces[t].pc) == Some(tier.traces[t].fp) {
        tier.stamps[t] = mem.code_generation();
    } else {
        tier.sever_with_penalty(t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chimera_isa::XReg;

    #[test]
    fn epilogue_indirection_uses_disp32() {
        // The fixed 16-byte exit-slot layout in `compile` depends on
        // `jmp qword [r12 + EPILOGUE]` taking the 8-byte disp32 form.
        const { assert!(off::EPILOGUE > 127) };
    }

    #[test]
    fn ctx_layout_matches_emitted_offsets() {
        assert_eq!(off::PC, 0);
        assert_eq!(off::FUEL, 8);
        assert_eq!(off::LD_LIM, off::LD_START + 8);
        assert_eq!(off::ST_BASE, off::LD_LIM + 32);
        assert_eq!(
            off::EPILOGUE as usize,
            std::mem::offset_of!(JitCtx, epilogue)
        );
    }

    #[test]
    fn compilation_is_deterministic() {
        let ops = vec![
            Uop {
                op: MicroOp::Addi {
                    rd: XReg::T0,
                    rs1: XReg::T0,
                    imm: 1,
                },
                len: 4,
                cost: 1,
                is_store: false,
            },
            Uop {
                op: MicroOp::Jal {
                    rd: XReg::ZERO,
                    offset: -4,
                },
                len: 4,
                cost: 2,
                is_store: false,
            },
        ];
        let a = compile(&ops, 0x1_0000);
        let b = compile(&ops, 0x1_0000);
        assert_eq!(a.code, b.code);
        assert_eq!(a.chain, b.chain);
        assert!(!a.code.is_empty());
    }
}
