//! A minimal x86-64 instruction encoder for the template JIT.
//!
//! Only the handful of forms the per-uop templates need are implemented,
//! each as a dedicated method so call sites read like assembly listings.
//! Emission is append-only into a `Vec<u8>`; forward references go through
//! [`Label`]s whose rel32 slots are back-patched by [`Asm::finish`]. All
//! emitted code is position-independent *by construction*: the encoder has
//! no absolute-address form at all (external state is reached through
//! `[r12 + disp]` context fields, and every jump/call is rel32 within the
//! buffer or indirect through memory), which is what makes recompiled
//! traces byte-identical regardless of where the arena cursor sits.
//!
//! Safety note: this module is pure data manipulation — it builds byte
//! vectors and never executes them. The unsafe execution lives in
//! [`super::exec`].

/// A general-purpose register, numbered 0 (`rax`) to 15 (`r15`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reg(pub u8);

pub const RAX: Reg = Reg(0);
pub const RCX: Reg = Reg(1);
pub const RDX: Reg = Reg(2);
pub const RBX: Reg = Reg(3);
pub const RBP: Reg = Reg(5);
pub const RSI: Reg = Reg(6);
pub const RDI: Reg = Reg(7);
pub const R12: Reg = Reg(12);
pub const R13: Reg = Reg(13);
pub const R14: Reg = Reg(14);
pub const R15: Reg = Reg(15);

/// A condition code (the low nibble of the `0F 8x`/`0F 9x` opcodes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cc {
    /// Equal / zero.
    E = 0x4,
    /// Not equal / not zero.
    Ne = 0x5,
    /// Unsigned below.
    B = 0x2,
    /// Unsigned above or equal.
    Ae = 0x3,
    /// Signed less.
    L = 0xc,
    /// Signed greater or equal.
    Ge = 0xd,
}

/// A forward-referencable code position.
#[derive(Debug, Clone, Copy)]
pub struct Label(usize);

/// The append-only encoder.
#[derive(Debug, Default)]
pub struct Asm {
    code: Vec<u8>,
    /// `(offset of a rel32 slot, label id)`; the displacement is relative
    /// to the end of the slot.
    fixups: Vec<(usize, usize)>,
    labels: Vec<Option<usize>>,
}

/// Two-operand ALU opcode bytes (`op r/m64, r64` form; the `r64, r/m64`
/// form is `base + 2`, the `r/m64, imm` forms use `/digit`).
#[derive(Debug, Clone, Copy)]
pub enum Alu {
    /// Integer add.
    Add,
    /// Integer subtract.
    Sub,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Compare (subtract, flags only).
    Cmp,
}

impl Alu {
    fn mr(self) -> u8 {
        match self {
            Alu::Add => 0x01,
            Alu::Or => 0x09,
            Alu::And => 0x21,
            Alu::Sub => 0x29,
            Alu::Xor => 0x31,
            Alu::Cmp => 0x39,
        }
    }
    fn digit(self) -> u8 {
        match self {
            Alu::Add => 0,
            Alu::Or => 1,
            Alu::And => 4,
            Alu::Sub => 5,
            Alu::Xor => 6,
            Alu::Cmp => 7,
        }
    }
}

impl Asm {
    /// Creates an empty encoder.
    pub fn new() -> Asm {
        Asm::default()
    }

    /// Current emission offset.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Allocates a label to bind later.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds a label to the current offset.
    pub fn bind(&mut self, l: Label) {
        assert!(self.labels[l.0].is_none(), "label bound twice");
        self.labels[l.0] = Some(self.code.len());
    }

    /// Resolves all fixups and returns the code. Panics on unbound labels
    /// (a compiler bug, not a runtime condition).
    pub fn finish(mut self) -> Vec<u8> {
        for (at, id) in self.fixups {
            let target = self.labels[id].expect("unbound label");
            let rel = target as i64 - (at as i64 + 4);
            let rel = i32::try_from(rel).expect("rel32 overflow");
            self.code[at..at + 4].copy_from_slice(&rel.to_le_bytes());
        }
        self.code
    }

    fn byte(&mut self, b: u8) {
        self.code.push(b);
    }

    fn bytes(&mut self, b: &[u8]) {
        self.code.extend_from_slice(b);
    }

    /// REX prefix. `w` selects 64-bit operands, `r` extends the modrm reg
    /// field, `x` the SIB index, `b` the modrm r/m / SIB base.
    fn rex(&mut self, w: bool, r: u8, x: u8, b: u8) {
        let v = 0x40 | (w as u8) << 3 | ((r >> 3) & 1) << 2 | ((x >> 3) & 1) << 1 | ((b >> 3) & 1);
        if v != 0x40 {
            self.byte(v);
        }
    }

    /// REX that may be omitted entirely when no bit is set (for 32-bit
    /// forms on low registers).
    fn rex_opt(&mut self, r: u8, x: u8, b: u8) {
        let v = 0x40 | ((r >> 3) & 1) << 2 | ((x >> 3) & 1) << 1 | ((b >> 3) & 1);
        if v != 0x40 {
            self.byte(v);
        }
    }

    /// modrm + optional SIB + displacement for a `[base + disp]` operand.
    fn modrm_mem(&mut self, reg: u8, base: Reg, disp: i32) {
        let b = base.0 & 7;
        let need_sib = b == 4; // rsp/r12 encodings require a SIB byte
        let (modbits, short) = if disp == 0 && b != 5 {
            (0b00u8, true)
        } else if i8::try_from(disp).is_ok() {
            (0b01, false)
        } else {
            (0b10, false)
        };
        let rm = if need_sib { 4 } else { b };
        self.byte(modbits << 6 | (reg & 7) << 3 | rm);
        if need_sib {
            self.byte(0x24); // scale 0, no index, base = base
        }
        match (modbits, short) {
            (0b00, true) => {}
            (0b01, _) => self.byte(disp as i8 as u8),
            _ => self.bytes(&disp.to_le_bytes()),
        }
    }

    /// modrm + SIB for a `[base + index]` operand (scale 1, no disp; the
    /// templates never use rbp/r13 as the base here).
    fn modrm_bi(&mut self, reg: u8, base: Reg, index: Reg) {
        assert!(base.0 & 7 != 5, "base needing disp8 unsupported");
        assert!(index.0 & 7 != 4, "rsp cannot be an index");
        self.byte((reg & 7) << 3 | 4);
        self.byte((index.0 & 7) << 3 | (base.0 & 7));
    }

    /// `push r64`.
    pub fn push(&mut self, r: Reg) {
        self.rex_opt(0, 0, r.0);
        self.byte(0x50 + (r.0 & 7));
    }

    /// `pop r64`.
    pub fn pop(&mut self, r: Reg) {
        self.rex_opt(0, 0, r.0);
        self.byte(0x58 + (r.0 & 7));
    }

    /// `mov dst, src` (64-bit).
    pub fn mov_rr(&mut self, dst: Reg, src: Reg) {
        self.rex(true, src.0, 0, dst.0);
        self.byte(0x89);
        self.byte(0xc0 | (src.0 & 7) << 3 | (dst.0 & 7));
    }

    /// `mov dst32, src32` (zero-extends to 64 bits).
    pub fn mov_rr32(&mut self, dst: Reg, src: Reg) {
        self.rex_opt(src.0, 0, dst.0);
        self.byte(0x89);
        self.byte(0xc0 | (src.0 & 7) << 3 | (dst.0 & 7));
    }

    /// `mov dst, qword [base + index*8]` (the stamp-table probe; the
    /// templates never use an rbp/r13-class base here).
    pub fn mov_rm_s8(&mut self, dst: Reg, base: Reg, index: Reg) {
        assert!(base.0 & 7 != 5, "base needing disp8 unsupported");
        assert!(index.0 & 7 != 4, "rsp cannot be an index");
        self.rex(true, dst.0, index.0, base.0);
        self.byte(0x8b);
        self.byte((dst.0 & 7) << 3 | 4);
        self.byte(0xc0 | (index.0 & 7) << 3 | (base.0 & 7));
    }

    /// `mov dst, qword [base + disp]`.
    pub fn mov_rm(&mut self, dst: Reg, base: Reg, disp: i32) {
        self.rex(true, dst.0, 0, base.0);
        self.byte(0x8b);
        self.modrm_mem(dst.0, base, disp);
    }

    /// `mov dst32, dword [base + disp]` (zero-extends to 64 bits).
    pub fn mov_rm32(&mut self, dst: Reg, base: Reg, disp: i32) {
        self.rex_opt(dst.0, 0, base.0);
        self.byte(0x8b);
        self.modrm_mem(dst.0, base, disp);
    }

    /// `mov qword [base + disp], src`.
    pub fn mov_mr(&mut self, base: Reg, disp: i32, src: Reg) {
        self.rex(true, src.0, 0, base.0);
        self.byte(0x89);
        self.modrm_mem(src.0, base, disp);
    }

    /// `mov qword [base + disp], imm32` (sign-extended).
    pub fn mov_mi(&mut self, base: Reg, disp: i32, imm: i32) {
        self.rex(true, 0, 0, base.0);
        self.byte(0xc7);
        self.modrm_mem(0, base, disp);
        self.bytes(&imm.to_le_bytes());
    }

    /// Loads a 64-bit constant with the shortest encoding whose result is
    /// exact: `mov r32, imm32` (zero-extends), `mov r64, simm32`
    /// (sign-extends) or `movabs`.
    pub fn mov_ri(&mut self, dst: Reg, imm: u64) {
        if u32::try_from(imm).is_ok() {
            self.rex_opt(0, 0, dst.0);
            self.byte(0xb8 + (dst.0 & 7));
            self.bytes(&(imm as u32).to_le_bytes());
        } else if i32::try_from(imm as i64).is_ok() {
            self.rex(true, 0, 0, dst.0);
            self.byte(0xc7);
            self.byte(0xc0 | (dst.0 & 7));
            self.bytes(&(imm as u32).to_le_bytes());
        } else {
            self.rex(true, 0, 0, dst.0);
            self.byte(0xb8 + (dst.0 & 7));
            self.bytes(&imm.to_le_bytes());
        }
    }

    /// `op dst, src` (64-bit).
    pub fn alu_rr(&mut self, op: Alu, dst: Reg, src: Reg) {
        self.rex(true, src.0, 0, dst.0);
        self.byte(op.mr());
        self.byte(0xc0 | (src.0 & 7) << 3 | (dst.0 & 7));
    }

    /// `op dst, qword [base + index*8]` (the indirect-target-table key
    /// probe; same base/index restrictions as [`Asm::mov_rm_s8`]).
    pub fn alu_rm_s8(&mut self, op: Alu, dst: Reg, base: Reg, index: Reg) {
        assert!(base.0 & 7 != 5, "base needing disp8 unsupported");
        assert!(index.0 & 7 != 4, "rsp cannot be an index");
        self.rex(true, dst.0, index.0, base.0);
        self.byte(op.mr() + 2);
        self.byte((dst.0 & 7) << 3 | 4);
        self.byte(0xc0 | (index.0 & 7) << 3 | (base.0 & 7));
    }

    /// `op dst, qword [base + disp]`.
    pub fn alu_rm(&mut self, op: Alu, dst: Reg, base: Reg, disp: i32) {
        self.rex(true, dst.0, 0, base.0);
        self.byte(op.mr() + 2);
        self.modrm_mem(dst.0, base, disp);
    }

    /// `op qword [base + disp], src`.
    pub fn alu_mr(&mut self, op: Alu, base: Reg, disp: i32, src: Reg) {
        self.rex(true, src.0, 0, base.0);
        self.byte(op.mr());
        self.modrm_mem(src.0, base, disp);
    }

    /// `op dst, imm32` (64-bit, sign-extended; imm8 form when it fits).
    pub fn alu_ri(&mut self, op: Alu, dst: Reg, imm: i32) {
        self.rex(true, 0, 0, dst.0);
        if i8::try_from(imm).is_ok() {
            self.byte(0x83);
            self.byte(0xc0 | op.digit() << 3 | (dst.0 & 7));
            self.byte(imm as i8 as u8);
        } else {
            self.byte(0x81);
            self.byte(0xc0 | op.digit() << 3 | (dst.0 & 7));
            self.bytes(&imm.to_le_bytes());
        }
    }

    /// `op dst32, imm32` (32-bit form).
    pub fn alu_ri32(&mut self, op: Alu, dst: Reg, imm: i32) {
        self.rex_opt(0, 0, dst.0);
        if i8::try_from(imm).is_ok() {
            self.byte(0x83);
            self.byte(0xc0 | op.digit() << 3 | (dst.0 & 7));
            self.byte(imm as i8 as u8);
        } else {
            self.byte(0x81);
            self.byte(0xc0 | op.digit() << 3 | (dst.0 & 7));
            self.bytes(&imm.to_le_bytes());
        }
    }

    /// `op qword [base + disp], imm32` (sign-extended; imm8 when it fits).
    pub fn alu_mi(&mut self, op: Alu, base: Reg, disp: i32, imm: i32) {
        self.rex(true, 0, 0, base.0);
        if i8::try_from(imm).is_ok() {
            self.byte(0x83);
            self.modrm_mem(op.digit(), base, disp);
            self.byte(imm as i8 as u8);
        } else {
            self.byte(0x81);
            self.modrm_mem(op.digit(), base, disp);
            self.bytes(&imm.to_le_bytes());
        }
    }

    /// `cmp dst, qword [base + disp]`.
    pub fn cmp_rm(&mut self, dst: Reg, base: Reg, disp: i32) {
        self.alu_rm(Alu::Cmp, dst, base, disp);
    }

    /// Sign-extending load of `bytes` (1/2/4) from `[base + index]` into a
    /// 64-bit register; 8-byte loads are plain `mov`.
    pub fn load_sx(&mut self, dst: Reg, base: Reg, index: Reg, bytes: u8) {
        match bytes {
            1 => {
                self.rex(true, dst.0, index.0, base.0);
                self.bytes(&[0x0f, 0xbe]);
                self.modrm_bi(dst.0, base, index);
            }
            2 => {
                self.rex(true, dst.0, index.0, base.0);
                self.bytes(&[0x0f, 0xbf]);
                self.modrm_bi(dst.0, base, index);
            }
            4 => {
                self.rex(true, dst.0, index.0, base.0);
                self.byte(0x63); // movsxd
                self.modrm_bi(dst.0, base, index);
            }
            8 => {
                self.rex(true, dst.0, index.0, base.0);
                self.byte(0x8b);
                self.modrm_bi(dst.0, base, index);
            }
            _ => unreachable!("bad load width"),
        }
    }

    /// Zero-extending load of `bytes` (1/2/4) from `[base + index]` into a
    /// 64-bit register; 8-byte loads are plain `mov`.
    pub fn load_zx(&mut self, dst: Reg, base: Reg, index: Reg, bytes: u8) {
        match bytes {
            1 => {
                self.rex_opt(dst.0, index.0, base.0);
                self.bytes(&[0x0f, 0xb6]);
                self.modrm_bi(dst.0, base, index);
            }
            2 => {
                self.rex_opt(dst.0, index.0, base.0);
                self.bytes(&[0x0f, 0xb7]);
                self.modrm_bi(dst.0, base, index);
            }
            4 => {
                self.rex_opt(dst.0, index.0, base.0);
                self.byte(0x8b);
                self.modrm_bi(dst.0, base, index);
            }
            8 => {
                self.rex(true, dst.0, index.0, base.0);
                self.byte(0x8b);
                self.modrm_bi(dst.0, base, index);
            }
            _ => unreachable!("bad load width"),
        }
    }

    /// Store of the low `bytes` (1/2/4/8) of `src` to `[base + index]`.
    pub fn store_idx(&mut self, base: Reg, index: Reg, src: Reg, bytes: u8) {
        match bytes {
            1 => {
                // Low-byte stores of rsi/rdi need a REX prefix even when no
                // extension bit is set (else they'd address dh/bh).
                let v = 0x40
                    | ((src.0 >> 3) & 1) << 2
                    | ((index.0 >> 3) & 1) << 1
                    | ((base.0 >> 3) & 1);
                if v != 0x40 || src.0 >= 4 {
                    self.byte(v);
                }
                self.byte(0x88);
                self.modrm_bi(src.0, base, index);
            }
            2 => {
                self.byte(0x66);
                self.rex_opt(src.0, index.0, base.0);
                self.byte(0x89);
                self.modrm_bi(src.0, base, index);
            }
            4 => {
                self.rex_opt(src.0, index.0, base.0);
                self.byte(0x89);
                self.modrm_bi(src.0, base, index);
            }
            8 => {
                self.rex(true, src.0, index.0, base.0);
                self.byte(0x89);
                self.modrm_bi(src.0, base, index);
            }
            _ => unreachable!("bad store width"),
        }
    }

    fn shift(&mut self, w: bool, digit: u8, r: Reg, imm: u8) {
        if w {
            self.rex(true, 0, 0, r.0);
        } else {
            self.rex_opt(0, 0, r.0);
        }
        if imm == 1 {
            self.byte(0xd1);
            self.byte(0xc0 | digit << 3 | (r.0 & 7));
        } else {
            self.byte(0xc1);
            self.byte(0xc0 | digit << 3 | (r.0 & 7));
            self.byte(imm);
        }
    }

    fn shift_cl(&mut self, w: bool, digit: u8, r: Reg) {
        if w {
            self.rex(true, 0, 0, r.0);
        } else {
            self.rex_opt(0, 0, r.0);
        }
        self.byte(0xd3);
        self.byte(0xc0 | digit << 3 | (r.0 & 7));
    }

    /// `shl r, imm` (64-bit).
    pub fn shl_ri(&mut self, r: Reg, imm: u8) {
        self.shift(true, 4, r, imm);
    }
    /// `shr r, imm` (64-bit).
    pub fn shr_ri(&mut self, r: Reg, imm: u8) {
        self.shift(true, 5, r, imm);
    }
    /// `sar r, imm` (64-bit).
    pub fn sar_ri(&mut self, r: Reg, imm: u8) {
        self.shift(true, 7, r, imm);
    }
    /// `shl r32, imm`.
    pub fn shl32_ri(&mut self, r: Reg, imm: u8) {
        self.shift(false, 4, r, imm);
    }
    /// `shr r32, imm`.
    pub fn shr32_ri(&mut self, r: Reg, imm: u8) {
        self.shift(false, 5, r, imm);
    }
    /// `sar r32, imm`.
    pub fn sar32_ri(&mut self, r: Reg, imm: u8) {
        self.shift(false, 7, r, imm);
    }
    /// `shl r, cl` (64-bit).
    pub fn shl_cl(&mut self, r: Reg) {
        self.shift_cl(true, 4, r);
    }
    /// `shr r, cl` (64-bit).
    pub fn shr_cl(&mut self, r: Reg) {
        self.shift_cl(true, 5, r);
    }
    /// `sar r, cl` (64-bit).
    pub fn sar_cl(&mut self, r: Reg) {
        self.shift_cl(true, 7, r);
    }
    /// `shl r32, cl`.
    pub fn shl32_cl(&mut self, r: Reg) {
        self.shift_cl(false, 4, r);
    }
    /// `shr r32, cl`.
    pub fn shr32_cl(&mut self, r: Reg) {
        self.shift_cl(false, 5, r);
    }
    /// `sar r32, cl`.
    pub fn sar32_cl(&mut self, r: Reg) {
        self.shift_cl(false, 7, r);
    }

    /// `movsxd dst, src32` (sign-extend the low 32 bits of `src`).
    pub fn movsxd(&mut self, dst: Reg, src: Reg) {
        self.rex(true, dst.0, 0, src.0);
        self.byte(0x63);
        self.byte(0xc0 | (dst.0 & 7) << 3 | (src.0 & 7));
    }

    /// `imul dst, src` (64-bit).
    pub fn imul_rr(&mut self, dst: Reg, src: Reg) {
        self.rex(true, dst.0, 0, src.0);
        self.bytes(&[0x0f, 0xaf]);
        self.byte(0xc0 | (dst.0 & 7) << 3 | (src.0 & 7));
    }

    /// `imul dst32, src32`.
    pub fn imul_rr32(&mut self, dst: Reg, src: Reg) {
        self.rex_opt(dst.0, 0, src.0);
        self.bytes(&[0x0f, 0xaf]);
        self.byte(0xc0 | (dst.0 & 7) << 3 | (src.0 & 7));
    }

    /// `setcc r8` then `movzx r32, r8` — leaves 0/1 in the full register.
    /// Only low registers (rax..rdx) are supported.
    pub fn setcc_zx(&mut self, cc: Cc, r: Reg) {
        assert!(r.0 < 4, "setcc_zx needs a low register");
        self.bytes(&[0x0f, 0x90 + cc as u8]);
        self.byte(0xc0 | (r.0 & 7));
        self.bytes(&[0x0f, 0xb6]);
        self.byte(0xc0 | (r.0 & 7) << 3 | (r.0 & 7));
    }

    /// `test r, r` (64-bit).
    pub fn test_rr(&mut self, a: Reg, b: Reg) {
        self.rex(true, b.0, 0, a.0);
        self.byte(0x85);
        self.byte(0xc0 | (b.0 & 7) << 3 | (a.0 & 7));
    }

    /// `jcc label` (rel32 form).
    pub fn jcc(&mut self, cc: Cc, l: Label) {
        self.bytes(&[0x0f, 0x80 + cc as u8]);
        self.fixups.push((self.code.len(), l.0));
        self.bytes(&[0; 4]);
    }

    /// `jmp label` (rel32 form).
    pub fn jmp(&mut self, l: Label) {
        self.byte(0xe9);
        self.fixups.push((self.code.len(), l.0));
        self.bytes(&[0; 4]);
    }

    /// `jmp r64`.
    pub fn jmp_r(&mut self, r: Reg) {
        self.rex_opt(0, 0, r.0);
        self.byte(0xff);
        self.byte(0xe0 | (r.0 & 7));
    }

    /// `jmp qword [base + disp]`.
    pub fn jmp_m(&mut self, base: Reg, disp: i32) {
        self.rex_opt(0, 0, base.0);
        self.byte(0xff);
        self.modrm_mem(4, base, disp);
    }

    /// `call qword [base + disp]`.
    pub fn call_m(&mut self, base: Reg, disp: i32) {
        self.rex_opt(0, 0, base.0);
        self.byte(0xff);
        self.modrm_mem(2, base, disp);
    }

    /// `ret`.
    pub fn ret(&mut self) {
        self.byte(0xc3);
    }

    /// `int3` (emitted as padding in patchable exit slots).
    pub fn int3(&mut self) {
        self.byte(0xcc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one(f: impl FnOnce(&mut Asm)) -> Vec<u8> {
        let mut a = Asm::new();
        f(&mut a);
        a.finish()
    }

    #[test]
    fn hand_checked_encodings() {
        // Each expectation hand-assembled against the Intel SDM.
        assert_eq!(one(|a| a.push(R12)), [0x41, 0x54]);
        assert_eq!(one(|a| a.pop(R14)), [0x41, 0x5e]);
        assert_eq!(one(|a| a.mov_rr(R12, RDI)), [0x49, 0x89, 0xfc]);
        // mov r13, [r12+0x40]: REX.WRB, SIB required for r12 base.
        assert_eq!(
            one(|a| a.mov_rm(R13, R12, 0x40)),
            [0x4d, 0x8b, 0x6c, 0x24, 0x40]
        );
        // mov rax, [r13+0]: r13 base forces a disp8 of zero.
        assert_eq!(one(|a| a.mov_rm(RAX, R13, 0)), [0x49, 0x8b, 0x45, 0x00]);
        assert_eq!(one(|a| a.mov_rm(RAX, RCX, 0)), [0x48, 0x8b, 0x01]);
        // mov [r12+0x10], rax.
        assert_eq!(
            one(|a| a.mov_mr(R12, 0x10, RAX)),
            [0x49, 0x89, 0x44, 0x24, 0x10]
        );
        // add qword [r12+0x10], 5 (imm8 form).
        assert_eq!(
            one(|a| a.alu_mi(Alu::Add, R12, 0x10, 5)),
            [0x49, 0x83, 0x44, 0x24, 0x10, 0x05]
        );
        // sub qword [r12+8], 0x1234 (imm32 form).
        assert_eq!(
            one(|a| a.alu_mi(Alu::Sub, R12, 8, 0x1234)),
            [0x49, 0x81, 0x6c, 0x24, 0x08, 0x34, 0x12, 0x00, 0x00]
        );
        // cmp qword [r12+0x18], 64.
        assert_eq!(
            one(|a| a.alu_mi(Alu::Cmp, R12, 0x18, 64)),
            [0x49, 0x83, 0x7c, 0x24, 0x18, 0x40]
        );
        // mov qword [r12+0x20], 0x1234 (sign-extended imm32).
        assert_eq!(
            one(|a| a.mov_mi(R12, 0x20, 0x1234)),
            [0x49, 0xc7, 0x44, 0x24, 0x20, 0x34, 0x12, 0x00, 0x00]
        );
        // movzx eax, byte [rcx+rdx].
        assert_eq!(
            one(|a| a.load_zx(RAX, RCX, RDX, 1)),
            [0x0f, 0xb6, 0x04, 0x11]
        );
        // movsx rax, word [rcx+rdx].
        assert_eq!(
            one(|a| a.load_sx(RAX, RCX, RDX, 2)),
            [0x48, 0x0f, 0xbf, 0x04, 0x11]
        );
        // movsxd rax, dword [rcx+rdx].
        assert_eq!(
            one(|a| a.load_sx(RAX, RCX, RDX, 4)),
            [0x48, 0x63, 0x04, 0x11]
        );
        // mov [rcx+rdx], sil needs the bare REX.
        assert_eq!(
            one(|a| a.store_idx(RCX, RDX, RSI, 1)),
            [0x40, 0x88, 0x34, 0x11]
        );
        // mov word [rcx+rdx], si.
        assert_eq!(
            one(|a| a.store_idx(RCX, RDX, RSI, 2)),
            [0x66, 0x89, 0x34, 0x11]
        );
        // mov [rcx+rdx], rsi.
        assert_eq!(
            one(|a| a.store_idx(RCX, RDX, RSI, 8)),
            [0x48, 0x89, 0x34, 0x11]
        );
        // add rax, [r13+0x28].
        assert_eq!(
            one(|a| a.alu_rm(Alu::Add, RAX, R13, 0x28)),
            [0x49, 0x03, 0x45, 0x28]
        );
        // add rax, -16 (imm8).
        assert_eq!(
            one(|a| a.alu_ri(Alu::Add, RAX, -16)),
            [0x48, 0x83, 0xc0, 0xf0]
        );
        // and eax, 0x7f (32-bit, imm8).
        assert_eq!(one(|a| a.alu_ri32(Alu::And, RAX, 0x7f)), [0x83, 0xe0, 0x7f]);
        // mov eax, 7 / mov rax, -2 / movabs.
        assert_eq!(one(|a| a.mov_ri(RAX, 7)), [0xb8, 0x07, 0x00, 0x00, 0x00]);
        assert_eq!(
            one(|a| a.mov_ri(RAX, (-2i64) as u64)),
            [0x48, 0xc7, 0xc0, 0xfe, 0xff, 0xff, 0xff]
        );
        assert_eq!(
            one(|a| a.mov_ri(RCX, 0x1_0000_0000)),
            [0x48, 0xb9, 0x00, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00]
        );
        // shl rax, 3 / sar eax, 1 / shr rax, cl.
        assert_eq!(one(|a| a.shl_ri(RAX, 3)), [0x48, 0xc1, 0xe0, 0x03]);
        assert_eq!(one(|a| a.sar32_ri(RAX, 1)), [0xd1, 0xf8]);
        assert_eq!(one(|a| a.shr_cl(RAX)), [0x48, 0xd3, 0xe8]);
        // movsxd rax, eax.
        assert_eq!(one(|a| a.movsxd(RAX, RAX)), [0x48, 0x63, 0xc0]);
        // imul rax, rcx.
        assert_eq!(one(|a| a.imul_rr(RAX, RCX)), [0x48, 0x0f, 0xaf, 0xc1]);
        // cmp rax, [rsi+4]; setl al; movzx eax, al.
        assert_eq!(one(|a| a.cmp_rm(RAX, RSI, 4)), [0x48, 0x3b, 0x46, 0x04]);
        assert_eq!(
            one(|a| a.setcc_zx(Cc::L, RAX)),
            [0x0f, 0x9c, 0xc0, 0x0f, 0xb6, 0xc0]
        );
        // test rax, rax.
        assert_eq!(one(|a| a.test_rr(RAX, RAX)), [0x48, 0x85, 0xc0]);
        // mov r14d, esi.
        assert_eq!(one(|a| a.mov_rr32(R14, RSI)), [0x41, 0x89, 0xf6]);
        // mov rax, [rax + r14*8].
        assert_eq!(
            one(|a| a.mov_rm_s8(RAX, RAX, R14)),
            [0x4a, 0x8b, 0x04, 0xf0]
        );
        // cmp rax, [rdx + rcx*8].
        assert_eq!(
            one(|a| a.alu_rm_s8(Alu::Cmp, RAX, RDX, RCX)),
            [0x48, 0x3b, 0x04, 0xca]
        );
        // or rax, rcx.
        assert_eq!(one(|a| a.alu_rr(Alu::Or, RAX, RCX)), [0x48, 0x09, 0xc8]);
        // add qword [r12+0x10], rbp.
        assert_eq!(
            one(|a| a.alu_mr(Alu::Add, R12, 0x10, RBP)),
            [0x49, 0x01, 0x6c, 0x24, 0x10]
        );
        // jmp rdx.
        assert_eq!(one(|a| a.jmp_r(RDX)), [0xff, 0xe2]);
        // jmp qword [r12+0x78].
        assert_eq!(one(|a| a.jmp_m(R12, 0x78)), [0x41, 0xff, 0x64, 0x24, 0x78]);
        // call qword [r12+0x50].
        assert_eq!(one(|a| a.call_m(R12, 0x50)), [0x41, 0xff, 0x54, 0x24, 0x50]);
        assert_eq!(one(|a| a.ret()), [0xc3]);
        assert_eq!(one(|a| a.int3()), [0xcc]);
    }

    #[test]
    fn labels_resolve_forward_and_backward() {
        let mut a = Asm::new();
        let top = a.label();
        let out = a.label();
        a.bind(top);
        a.test_rr(RAX, RAX);
        a.jcc(Cc::Ne, out); // +? forward
        a.jmp(top); // backward
        a.bind(out);
        a.ret();
        let code = a.finish();
        // Layout: test (3) + jcc rel32 (6) + jmp rel32 (5) + ret.
        // jcc target = 14, end of jcc = 9 -> rel 5.
        assert_eq!(&code[5..9], &5i32.to_le_bytes());
        // jmp target = 0, end of jmp = 14 -> rel -14.
        assert_eq!(&code[10..14], &(-14i32).to_le_bytes());
        assert_eq!(code[14], 0xc3);
    }
}
