//! Architectural state of one hart: integer/FP/vector register files, pc,
//! and the vector configuration established by `vsetvli`.

use chimera_isa::{Eew, FReg, VReg, VType, XReg, VLEN};

/// Bytes per vector register.
pub const VLENB: usize = (VLEN / 8) as usize;

/// One hart's architectural state.
#[derive(Debug, Clone)]
pub struct Hart {
    /// Integer registers; index 0 is hard-wired zero (enforced by
    /// [`Hart::set_x`]).
    x: [u64; 32],
    /// FP registers as raw bits (f32 values are NaN-boxed).
    f: [u64; 32],
    /// Vector registers.
    v: [[u8; VLENB]; 32],
    /// Program counter.
    pub pc: u64,
    /// Current vector length (elements), set by `vsetvli`.
    pub vl: u64,
    /// Current vector type, set by `vsetvli`.
    pub vtype: Option<VType>,
}

impl Default for Hart {
    fn default() -> Self {
        Hart {
            x: [0; 32],
            f: [0; 32],
            v: [[0; VLENB]; 32],
            pc: 0,
            vl: 0,
            vtype: None,
        }
    }
}

impl Hart {
    /// Creates a hart with all registers zero.
    pub fn new() -> Self {
        Hart::default()
    }

    /// Reads an integer register (`zero` reads 0).
    #[inline]
    pub fn get_x(&self, r: XReg) -> u64 {
        self.x[r.index() as usize]
    }

    /// Snapshot of the whole integer register file (differential testing).
    pub fn xregs(&self) -> [u64; 32] {
        self.x
    }

    /// Raw pointer to the integer register file, for the JIT tier's
    /// register contract (`r13` in emitted traces). Templates never write
    /// index 0, preserving the `zero` invariant `set_x` enforces.
    pub(crate) fn x_ptr(&mut self) -> *mut u64 {
        self.x.as_mut_ptr()
    }

    /// Raw pointer to the FP register file (`JitCtx::fregs`); same
    /// contract as [`Hart::x_ptr`].
    pub(crate) fn f_ptr(&mut self) -> *mut u64 {
        self.f.as_mut_ptr()
    }

    /// Writes an integer register (writes to `zero` are discarded).
    #[inline]
    pub fn set_x(&mut self, r: XReg, v: u64) {
        if r != XReg::ZERO {
            self.x[r.index() as usize] = v;
        }
    }

    /// Reads an FP register's raw bits.
    #[inline]
    pub fn get_f(&self, r: FReg) -> u64 {
        self.f[r.index() as usize]
    }

    /// Writes an FP register's raw bits.
    #[inline]
    pub fn set_f(&mut self, r: FReg, v: u64) {
        self.f[r.index() as usize] = v;
    }

    /// Reads an FP register as f64.
    #[inline]
    pub fn get_d(&self, r: FReg) -> f64 {
        f64::from_bits(self.get_f(r))
    }

    /// Writes an FP register as f64.
    #[inline]
    pub fn set_d(&mut self, r: FReg, v: f64) {
        self.set_f(r, v.to_bits());
    }

    /// Reads an FP register as f32, honouring NaN-boxing (an improperly
    /// boxed value reads as canonical NaN, as the spec requires).
    #[inline]
    pub fn get_s(&self, r: FReg) -> f32 {
        let bits = self.get_f(r);
        if bits >> 32 == 0xffff_ffff {
            f32::from_bits(bits as u32)
        } else {
            f32::NAN
        }
    }

    /// Writes an FP register as a NaN-boxed f32.
    #[inline]
    pub fn set_s(&mut self, r: FReg, v: f32) {
        self.set_f(r, 0xffff_ffff_0000_0000 | v.to_bits() as u64);
    }

    /// Borrows a vector register's bytes.
    #[inline]
    pub fn get_v(&self, r: VReg) -> &[u8; VLENB] {
        &self.v[r.index() as usize]
    }

    /// Mutably borrows a vector register's bytes.
    #[inline]
    pub fn get_v_mut(&mut self, r: VReg) -> &mut [u8; VLENB] {
        &mut self.v[r.index() as usize]
    }

    /// Reads element `i` of a vector register at the given element width,
    /// zero-extended to u64.
    pub fn v_elem(&self, r: VReg, eew: Eew, i: usize) -> u64 {
        let b = self.get_v(r);
        let w = eew.bytes() as usize;
        let off = i * w;
        let mut buf = [0u8; 8];
        buf[..w].copy_from_slice(&b[off..off + w]);
        u64::from_le_bytes(buf)
    }

    /// Writes element `i` of a vector register at the given element width
    /// (truncating `val`).
    pub fn set_v_elem(&mut self, r: VReg, eew: Eew, i: usize, val: u64) {
        let w = eew.bytes() as usize;
        let off = i * w;
        let bytes = val.to_le_bytes();
        self.get_v_mut(r)[off..off + w].copy_from_slice(&bytes[..w]);
    }

    /// The maximum vector length for an element width under LMUL grouping.
    pub fn vlmax(vtype: VType) -> u64 {
        (VLEN as u64 / vtype.sew.bits() as u64) * vtype.lmul as u64
    }

    /// The `gp` register value (the SMILE trampoline's pivot).
    #[inline]
    pub fn gp(&self) -> u64 {
        self.get_x(XReg::GP)
    }

    /// A 64-bit FNV-1a digest of the complete architectural state: pc,
    /// both scalar register files, every vector register, and the vector
    /// configuration. The many-hart determinism gates compare these
    /// checksums across host worker counts, so the digest must cover
    /// everything a divergent schedule could perturb.
    pub fn state_hash(&self) -> u64 {
        let mut h = fnv1a(0xcbf2_9ce4_8422_2325, self.pc);
        for &x in &self.x {
            h = fnv1a(h, x);
        }
        for &f in &self.f {
            h = fnv1a(h, f);
        }
        for v in &self.v {
            for chunk in v.chunks_exact(8) {
                h = fnv1a(h, u64::from_le_bytes(chunk.try_into().unwrap()));
            }
        }
        h = fnv1a(h, self.vl);
        match self.vtype {
            None => fnv1a(h, u64::MAX),
            Some(vt) => {
                let packed = (vt.sew.bits() as u64) << 32
                    | (vt.lmul as u64) << 2
                    | (vt.ta as u64) << 1
                    | vt.ma as u64;
                fnv1a(h, packed)
            }
        }
    }
}

/// One word-at-a-time FNV-1a step (a digest, not the byte-exact FNV).
#[inline]
fn fnv1a(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(0x100_0000_01b3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_register_is_hardwired() {
        let mut h = Hart::new();
        h.set_x(XReg::ZERO, 99);
        assert_eq!(h.get_x(XReg::ZERO), 0);
        h.set_x(XReg::A0, 7);
        assert_eq!(h.get_x(XReg::A0), 7);
    }

    #[test]
    fn nan_boxing() {
        let mut h = Hart::new();
        h.set_s(FReg::FA0, 1.5);
        assert_eq!(h.get_s(FReg::FA0), 1.5);
        // A raw f64 write leaves an improperly boxed f32: reads as NaN.
        h.set_d(FReg::FA0, 1.5);
        assert!(h.get_s(FReg::FA0).is_nan());
    }

    #[test]
    fn vector_element_access() {
        let mut h = Hart::new();
        let v1 = VReg::of(1);
        h.set_v_elem(v1, Eew::E64, 2, 0xdead_beef_0123_4567);
        assert_eq!(h.v_elem(v1, Eew::E64, 2), 0xdead_beef_0123_4567);
        h.set_v_elem(v1, Eew::E16, 0, 0x1234);
        assert_eq!(h.v_elem(v1, Eew::E16, 0), 0x1234);
        // E64 element 0 now has the E16 write in its low bytes.
        assert_eq!(h.v_elem(v1, Eew::E64, 0) & 0xffff, 0x1234);
    }

    #[test]
    fn vlmax_matches_vlen() {
        let vt = |sew, lmul| VType {
            sew,
            lmul,
            ta: true,
            ma: true,
        };
        assert_eq!(Hart::vlmax(vt(Eew::E64, 1)), 4); // 256/64
        assert_eq!(Hart::vlmax(vt(Eew::E32, 1)), 8);
        assert_eq!(Hart::vlmax(vt(Eew::E8, 8)), 256);
    }
}
