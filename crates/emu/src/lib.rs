//! # chimera-emu
//!
//! An RV64 emulator with extension gating, an RWX-permissioned memory model
//! and a deterministic cycle-cost model — the "hardware" substrate the
//! Chimera reproduction runs on (see DESIGN.md §2 for the substitution
//! rationale).
//!
//! The parts Chimera's correctness story depends on are modelled exactly:
//!
//! * **Extension gating**: a [`Cpu`] whose [`ExtSet`](chimera_isa::ExtSet)
//!   profile lacks an instruction's extension raises
//!   [`Trap::Illegal`] — FAM's migration trigger and lazy rewriting's hook.
//! * **Non-executable data**: fetching from a region without X raises
//!   [`Trap::Mem`] — the deterministic fault a partially executed SMILE
//!   trampoline produces.
//! * **`ebreak` traps**: the trap-based trampolines of baseline rewriters
//!   pay [`CostModel::trap`] through the simulated kernel.
//!
//! For speed, the interpreter front end is memoized by a
//! generation-invalidated basic-block decode cache ([`BlockCache`]), keyed
//! by `(pc, profile)` and invalidated whenever executable bytes change
//! (`poke_code`, view remaps, or guest stores to W+X mappings). On top of
//! the cache sits the default **micro-op execution engine**
//! ([`ExecMode::Engine`]): block bodies are lowered once into a flat
//! pre-resolved [`uop`] buffer with pre-computed cycle costs, blocks chain
//! directly to their static successors (severed on invalidation), and
//! per-core last-region hints ([`mem::AccessHints`]) turn hot-loop memory
//! accesses into a bounds check plus pointer arithmetic. All of it is
//! architecturally transparent: traps, results, `ExecStats` and trace
//! counters are identical across [`ExecMode::Reference`],
//! [`ExecMode::Interpreter`] and [`ExecMode::Engine`] (the differential
//! suite asserts it; `exec_engine` in `chimera-bench` gates the speedup).
//!
//! The hottest tier is the host-code JIT ([`ExecMode::Jit`]): block
//! bodies past a deterministic hotness threshold are template-compiled
//! to x86-64 and run out of a W^X-toggled arena, chained by patched
//! direct jumps and validated by the same (generation stamp, region
//! fingerprint) contract as uop chaining. On hosts without executable
//! pages ([`jit_available`] is false) the mode transparently degrades to
//! engine semantics. All `unsafe` in the crate lives in the `jit` module
//! — everything else keeps the deny.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod bbcache;
mod cost;
mod cpu;
mod fiber;
mod hart;
#[allow(unsafe_code)]
mod jit;
mod mem;
mod pool;
mod runner;
pub mod uop;

pub use bbcache::{BlockCache, CacheStats, ChainLink};
pub use cost::{CostModel, ExecStats};
pub use cpu::{Cpu, ExecMode, Stop, Trap};
pub use fiber::{FiberYield, HartFiber};
pub use hart::{Hart, VLENB};
pub use jit::jit_available;
pub use mem::{Access, AccessHints, DirtySpan, MasterImage, MemFault, Memory, Region, RegionHint};
pub use pool::{boot_pooled, MemoryPool, PoolStats};
pub use runner::{
    boot, boot_with_stack, run_binary, run_binary_mode, run_binary_on, run_binary_traced,
    run_binary_with, run_cpu, sys, BareRun, BareYield, RunError, RunResult,
};
// Re-exported so emulator users can construct tracers without a separate
// chimera-trace dependency line.
pub use chimera_trace::{TraceEvent, Tracer, TrapKind};

#[cfg(test)]
mod tests {
    use super::*;
    use chimera_isa::{ExtSet, XReg};
    use chimera_obj::{assemble, AsmOptions};

    fn asm(src: &str) -> chimera_obj::Binary {
        assemble(src, AsmOptions::default()).expect("assembles")
    }

    fn asm_compressed(src: &str) -> chimera_obj::Binary {
        assemble(
            src,
            AsmOptions {
                compress: true,
                ..Default::default()
            },
        )
        .expect("assembles")
    }

    fn exit_code(src: &str) -> i64 {
        let bin = asm(src);
        run_binary(&bin, 1_000_000).expect("runs").exit_code
    }

    #[test]
    fn arithmetic_loop() {
        // Sum 1..=10 = 55.
        let code = exit_code(
            "
            _start:
                li t0, 10
                li a0, 0
            loop:
                add a0, a0, t0
                addi t0, t0, -1
                bnez t0, loop
                li a7, 93
                ecall
            ",
        );
        assert_eq!(code, 55);
    }

    #[test]
    fn fibonacci() {
        // fib(15) = 610, iterative.
        let code = exit_code(
            "
            _start:
                li t0, 15
                li a0, 0
                li a1, 1
            loop:
                add t1, a0, a1
                mv a0, a1
                mv a1, t1
                addi t0, t0, -1
                bnez t0, loop
                li a7, 93
                ecall
            ",
        );
        assert_eq!(code, 610);
    }

    #[test]
    fn function_call_and_return() {
        let code = exit_code(
            "
            _start:
                li a0, 20
                call double_it
                call double_it
                li a7, 93
                ecall
            double_it:
                slli a0, a0, 1
                ret
            ",
        );
        assert_eq!(code, 80);
    }

    #[test]
    fn memory_and_data() {
        let code = exit_code(
            "
            .data
            vals: .dword 11
                  .dword 31
            .text
            _start:
                la t0, vals
                ld a0, 0(t0)
                ld a1, 8(t0)
                add a0, a0, a1
                sd a0, 0(t0)
                ld a0, 0(t0)
                li a7, 93
                ecall
            ",
        );
        assert_eq!(code, 42);
    }

    #[test]
    fn write_syscall_collects_stdout() {
        let bin = asm("
            .data
            msg: .byte 104
                 .byte 105
            .text
            _start:
                li a7, 64
                li a0, 1
                la a1, msg
                li a2, 2
                ecall
                li a7, 93
                li a0, 0
                ecall
            ");
        let r = run_binary(&bin, 10_000).unwrap();
        assert_eq!(r.stdout, b"hi");
    }

    #[test]
    fn division_edge_cases() {
        // div by zero = -1; rem by zero = dividend.
        let code = exit_code(
            "
            _start:
                li t0, 7
                li t1, 0
                div t2, t0, t1      # -1
                rem t3, t0, t1      # 7
                add a0, t2, t3      # 6
                li a7, 93
                ecall
            ",
        );
        assert_eq!(code, 6);
    }

    #[test]
    fn vector_add_e64() {
        let code = exit_code(
            "
            .data
            a: .dword 1
               .dword 2
               .dword 3
               .dword 4
            b: .dword 10
               .dword 20
               .dword 30
               .dword 40
            .text
            _start:
                li t0, 4
                vsetvli t1, t0, e64, m1, ta, ma
                la a0, a
                la a1, b
                vle64.v v1, (a0)
                vle64.v v2, (a1)
                vadd.vv v3, v1, v2
                vse64.v v3, (a0)
                ld a0, 24(a0)      # last element: 4 + 40
                li a7, 93
                ecall
            ",
        );
        assert_eq!(code, 44);
    }

    #[test]
    fn vector_reduction() {
        let code = exit_code(
            "
            .data
            a: .dword 5
               .dword 6
               .dword 7
               .dword 8
            .text
            _start:
                li t0, 4
                vsetvli t1, t0, e64, m1, ta, ma
                la a0, a
                vle64.v v1, (a0)
                vmv.v.i v2, 0
                vredsum.vs v3, v1, v2
                vmv.x.s a0, v3
                li a7, 93
                ecall
            ",
        );
        assert_eq!(code, 26);
    }

    #[test]
    fn vector_fp_macc() {
        // dot([1.5, 2.5], [4.0, 8.0]) = 6 + 20 = 26.
        let code = exit_code(
            "
            .data
            a: .double 1.5
               .double 2.5
            b: .double 4.0
               .double 8.0
            .text
            _start:
                li t0, 2
                vsetvli t1, t0, e64, m1, ta, ma
                la a0, a
                la a1, b
                vle64.v v1, (a0)
                vle64.v v2, (a1)
                vmv.v.i v3, 0
                vfmacc.vv v3, v1, v2
                vmv.v.i v4, 0
                vfredusum.vs v5, v3, v4
                vmv.x.s a0, v5
                fmv.d.x fa0, a0
                fcvt.l.d a0, fa0
                li a7, 93
                ecall
            ",
        );
        assert_eq!(code, 26);
    }

    #[test]
    fn vector_illegal_on_base_core() {
        let bin = asm("
            _start:
                li t0, 4
                vsetvli t1, t0, e64, m1, ta, ma
                li a7, 93
                ecall
            ");
        let err = run_binary_on(&bin, ExtSet::RV64GC, 1000).unwrap_err();
        match err {
            RunError::Trap(Trap::Illegal { pc, .. }) => {
                // li t0, 4 is a single addi: the vsetvli is at entry + 4.
                assert_eq!(pc, bin.entry + 4);
            }
            other => panic!("expected illegal trap, got {other:?}"),
        }
    }

    #[test]
    fn fetch_from_data_is_deterministic_fault() {
        // Jump into the data segment through gp: the SMILE scenario.
        let bin = asm("
            _start:
                jr gp
            ");
        let err = run_binary(&bin, 100).unwrap_err();
        match err {
            RunError::Trap(Trap::Mem { fault, .. }) => {
                assert_eq!(fault.access, Access::Fetch);
                assert!(fault.mapped);
                assert_eq!(fault.addr, bin.gp);
            }
            other => panic!("expected fetch fault, got {other:?}"),
        }
    }

    #[test]
    fn ebreak_traps_with_count() {
        let bin = asm("
            _start:
                ebreak
            ");
        let (mut cpu, mut mem) = boot(&bin, bin.profile);
        let stop = cpu.run(&mut mem, 100);
        assert!(matches!(stop, Stop::Trap(Trap::Breakpoint { .. })));
        assert_eq!(cpu.stats.ebreaks, 1);
        // pc still points at the ebreak (like hardware sepc).
        assert_eq!(cpu.hart.pc, bin.entry);
    }

    #[test]
    fn compressed_execution_and_c_gating() {
        let src = "
            _start:
                li a0, 0
                addi a0, a0, 21
                addi a0, a0, 21
                li a7, 93
                ecall
        ";
        let bin = asm_compressed(src);
        // Has 2-byte instructions.
        assert!(bin.section(".text").unwrap().data.len() < 20);
        let r = run_binary(&bin, 1000).unwrap();
        assert_eq!(r.exit_code, 42);

        // A core without the C extension rejects the first compressed
        // instruction.
        let err =
            run_binary_on(&bin, ExtSet::RV64GC.without(chimera_isa::Ext::C), 1000).unwrap_err();
        assert!(matches!(err, RunError::Trap(Trap::Illegal { .. })));
    }

    #[test]
    fn jalr_links_past_compressed_inst() {
        // c.jalr links pc+2, not pc+4.
        let bin = asm_compressed(
            "
            _start:
                la t0, target
                jalr t0          # compressed to c.jalr: link = pc + 2
                li a7, 93
                ecall
            target:
                mv a0, ra
                ret
            ",
        );
        let r = run_binary(&bin, 1000).unwrap();
        // ra must point at the instruction after the c.jalr: entry + 8 + 2.
        assert_eq!(r.exit_code as u64, bin.entry + 10);
    }

    #[test]
    fn stats_count_classes() {
        let bin = asm("
            _start:
                li t0, 3
            loop:
                addi t0, t0, -1
                bnez t0, loop
                la t1, ret_target
                jalr t1
                li a7, 93
                ecall
            ret_target:
                ret
            ");
        let r = run_binary(&bin, 1000).unwrap();
        assert_eq!(r.stats.branches, 3);
        // jalr t1 + ret = 2 indirect jumps.
        assert_eq!(r.stats.indirect_jumps, 2);
        assert!(r.stats.cycles > r.stats.instret);
    }

    #[test]
    fn zbb_ops_execute() {
        let code = exit_code(
            "
            _start:
                li t0, 0xf0
                clz t1, t0        # 56
                ctz t2, t0        # 4
                cpop t3, t0       # 4
                add a0, t1, t2
                add a0, a0, t3    # 64
                li t4, 5
                li t5, 9
                max t6, t4, t5    # 9
                add a0, a0, t6    # 73
                sh2add a0, t4, a0 # 73 + 20 = 93
                li a7, 93
                ecall
            ",
        );
        assert_eq!(code, 93);
    }

    #[test]
    fn fp_scalar_pipeline() {
        let code = exit_code(
            "
            _start:
                li t0, 3
                fcvt.d.l fa0, t0
                li t1, 4
                fcvt.d.l fa1, t1
                fmul.d fa2, fa0, fa1      # 12
                fmadd.d fa3, fa0, fa1, fa2 # 24
                fcvt.l.d a0, fa3
                li a7, 93
                ecall
            ",
        );
        assert_eq!(code, 24);
    }

    #[test]
    fn out_of_fuel_reported() {
        let bin = asm("
            _start:
            spin:
                j spin
            ");
        assert!(matches!(run_binary(&bin, 1000), Err(RunError::OutOfFuel)));
    }

    #[test]
    fn gp_is_initialized_to_data_segment() {
        let bin = asm("
            _start:
                mv a0, gp
                li a7, 93
                ecall
            ");
        let r = run_binary(&bin, 100).unwrap();
        assert_eq!(r.exit_code as u64, bin.gp);
        let data = bin.section(".data").unwrap();
        assert!(data.contains(bin.gp));
        // And the final register snapshot includes gp.
        assert_eq!(r.xregs[XReg::GP.index() as usize], bin.gp);
    }
}
