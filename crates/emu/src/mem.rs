//! Region-based memory with RWX permissions.
//!
//! The permission model is the load-bearing part: Chimera's SMILE trampoline
//! guarantees that a partially executed trampoline jumps through the
//! unmodified `gp`, which points into a **non-executable** data region, so
//! the fetch raises [`MemFault`] with [`Access::Fetch`] — the deterministic
//! "segmentation fault" of the paper. The emulator enforces R/W/X on every
//! access, exactly like the MMU the paper's kernel relies on.

use chimera_obj::{Binary, Perms, DEFAULT_STACK_SIZE, STACK_TOP};
use core::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The workspace-global source of region generation values. Process-wide
/// (not per-[`Memory`]) so that two `Memory` instances can never hand out
/// the same `(start, generation)` fingerprint for different bytes — a
/// decode cache shared across view switches or differential runs must
/// never validate a block against a recycled stamp. Monotonic; the value
/// itself carries no meaning beyond ordering and uniqueness.
static GENERATION_SOURCE: AtomicU64 = AtomicU64::new(0);

fn next_generation() -> u64 {
    GENERATION_SOURCE.fetch_add(1, Ordering::Relaxed) + 1
}

/// One recorded executable-code mutation: the byte span `[start, end)`
/// changed (or appeared, or vanished) and carries the generation stamp
/// the mutation produced. This is the dirty-region channel consumed by
/// incremental re-rewriting: [`Memory::dirty_regions_since`] returns the
/// spans stamped after a caller-held watermark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DirtySpan {
    /// First mutated address.
    pub start: u64,
    /// One past the last mutated address.
    pub end: u64,
    /// The generation stamp the mutation produced (compare against
    /// [`Memory::generation_watermark`]).
    pub generation: u64,
}

/// The access kind that faulted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Access {
    /// Instruction fetch (needs X).
    Fetch,
    /// Data load (needs R).
    Load,
    /// Data store (needs W).
    Store,
}

/// A memory access fault: unmapped address or insufficient permissions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemFault {
    /// The faulting address.
    pub addr: u64,
    /// What kind of access faulted.
    pub access: Access,
    /// Whether the address was mapped at all (false = unmapped).
    pub mapped: bool,
}

impl fmt::Display for MemFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?} fault at {:#x} ({})",
            self.access,
            self.addr,
            if self.mapped {
                "permission denied"
            } else {
                "unmapped"
            }
        )
    }
}

impl std::error::Error for MemFault {}

/// The physical backing of a [`Region`]: bytes this memory owns
/// privately, or a copy-on-write reference into an immutable
/// [`MasterImage`]. Regions are the paging granule of this model: a
/// shared region privatizes wholesale on its first write.
#[derive(Debug, Clone)]
enum Backing {
    /// Private bytes; in-place writes, never reallocated by guest
    /// execution (every guest store is a fixed-length overwrite).
    Owned(Vec<u8>),
    /// Clean copy-on-write view of a master region. Any write (or raw
    /// mirror request) converts to `Owned` first.
    Shared(Arc<[u8]>),
}

/// One mapped region.
#[derive(Debug, Clone)]
pub struct Region {
    /// First mapped address.
    pub start: u64,
    /// Region permissions.
    pub perms: Perms,
    /// Backing bytes (private, or shared copy-on-write with a master
    /// image — see [`Region::bytes`]).
    backing: Backing,
    /// Bounding offset span `[lo, hi)` of every byte written since the
    /// region was mapped, instantiated, or last recycled. Slot recycling
    /// restores exactly this span from the master image — the rest of the
    /// region is untouched and needs no work.
    written: Option<(usize, usize)>,
    /// Diagnostic name (usually the originating section).
    pub name: String,
    /// Write generation. Starts from a fresh **workspace-unique** value at
    /// map time (drawn from a process-global monotonic counter, so not even
    /// two different [`Memory`] instances can repeat one) and is bumped
    /// whenever the region's bytes change while it is executable; the
    /// CPU's basic-block decode cache keys validity on
    /// `(start, generation)`, so a bump — or an unmap/remap at the same
    /// address — invalidates every cached block decoded from this region.
    pub generation: u64,
}

impl Region {
    /// The region's bytes (read-only; writes go through [`Memory`]'s
    /// accessors so copy-on-write and generation bookkeeping hold).
    #[inline]
    pub fn bytes(&self) -> &[u8] {
        match &self.backing {
            Backing::Owned(v) => v,
            Backing::Shared(a) => a,
        }
    }

    /// The mapped length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.bytes().len()
    }

    /// Whether the region is zero-length.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// One past the last mapped address.
    pub fn end(&self) -> u64 {
        self.start + self.len() as u64
    }

    /// Whether the backing is still shared (clean copy-on-write) with a
    /// master image.
    pub fn is_shared(&self) -> bool {
        matches!(self.backing, Backing::Shared(_))
    }

    /// Converts a shared backing into a private copy; no-op when already
    /// owned. Guest-visible bytes are unchanged.
    fn privatize(&mut self) {
        if let Backing::Shared(a) = &self.backing {
            let owned = a.to_vec();
            self.backing = Backing::Owned(owned);
        }
    }

    /// Widens the written span to cover `[lo, hi)`.
    #[inline]
    fn mark_written(&mut self, lo: usize, hi: usize) {
        self.written = Some(match self.written {
            Some((a, b)) => (a.min(lo), b.max(hi)),
            None => (lo, hi),
        });
    }

    /// Mutable view of `[lo, hi)`: privatizes a shared backing and records
    /// the span as written. Every byte-mutation path funnels through here.
    #[inline]
    fn bytes_mut(&mut self, lo: usize, hi: usize) -> &mut [u8] {
        self.privatize();
        self.mark_written(lo, hi);
        match &mut self.backing {
            Backing::Owned(v) => &mut v[lo..hi],
            Backing::Shared(_) => unreachable!("privatized above"),
        }
    }
}

/// A per-access-kind "last region" translation hint held by the CPU (one
/// each for loads, stores and fetches — see [`AccessHints`]).
///
/// The hint is only ever an *index guess*: the fast path re-validates
/// bounds and permissions against the live region on every access, so a
/// stale hint can never return wrong data or skip a fault — it just falls
/// back to the full region search (which refreshes the hint). No epoch or
/// generation is needed for correctness; the store fast path additionally
/// restricts itself to writable non-executable regions so the
/// self-modifying-code generation bookkeeping in [`Memory::write`] is never
/// bypassed.
#[derive(Debug, Clone, Copy, Default)]
pub struct RegionHint(u32);

/// The three per-CPU translation hints, one per access kind, so a hot
/// loop's loads, stores and fetches each stay pinned to their own region.
#[derive(Debug, Clone, Copy, Default)]
pub struct AccessHints {
    /// Last region that satisfied a data load.
    pub load: RegionHint,
    /// Last (non-executable) region that satisfied a data store.
    pub store: RegionHint,
    /// Last region that satisfied an instruction fetch.
    pub fetch: RegionHint,
}

/// An immutable master memory image: the template pooled process slots
/// instantiate from. Region bytes live behind `Arc`s, so
/// [`Memory::instantiate_from`] shares every clean region with the master
/// (copy-on-write) instead of copying — instantiation cost is O(regions),
/// not O(bytes) — and slot recycling restores only the spans a run
/// actually dirtied.
#[derive(Debug)]
pub struct MasterImage {
    regions: Vec<MasterRegion>,
    entry: u64,
    gp: u64,
}

#[derive(Debug, Clone)]
struct MasterRegion {
    start: u64,
    perms: Perms,
    bytes: Arc<[u8]>,
    name: String,
}

impl MasterImage {
    /// Builds a master image from a binary: every section becomes a
    /// region, plus a zeroed stack of `stack_size` bytes ending at
    /// [`STACK_TOP`] (mirroring [`Memory::load_with_stack`]).
    pub fn new(binary: &Binary, stack_size: u64) -> MasterImage {
        assert!(stack_size > 0, "stack must be at least one byte");
        let mut img = MasterImage {
            regions: Vec::with_capacity(binary.sections.len() + 1),
            entry: binary.entry,
            gp: binary.gp,
        };
        for s in &binary.sections {
            img.push_region(s.addr, s.data.clone(), s.perms, &s.name);
        }
        img.push_region(
            STACK_TOP - stack_size,
            vec![0; stack_size as usize],
            Perms::RW,
            "[stack]",
        );
        img
    }

    /// Adds an extra region to the template (e.g. the kernel's `[lazy]`
    /// rewrite slack). Panics on overlap, like [`Memory::map_bytes`].
    pub fn push_region(&mut self, start: u64, bytes: Vec<u8>, perms: Perms, name: &str) {
        let end = start + bytes.len() as u64;
        for r in &self.regions {
            let r_end = r.start + r.bytes.len() as u64;
            assert!(
                end <= r.start || start >= r_end,
                "master region {name} [{start:#x},{end:#x}) overlaps {}",
                r.name
            );
        }
        self.regions.push(MasterRegion {
            start,
            perms,
            bytes: bytes.into(),
            name: name.to_string(),
        });
        self.regions.sort_by_key(|r| r.start);
    }

    /// The entry point instantiated CPUs boot at.
    pub fn entry(&self) -> u64 {
        self.entry
    }

    /// The global-pointer value for the psABI environment.
    pub fn gp(&self) -> u64 {
        self.gp
    }

    /// Number of template regions.
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// Total mapped bytes across all template regions.
    pub fn mapped_bytes(&self) -> u64 {
        self.regions.iter().map(|r| r.bytes.len() as u64).sum()
    }
}

/// Region-based memory.
#[derive(Debug, Clone, Default)]
pub struct Memory {
    regions: Vec<Region>,
    /// Incremented whenever executable bytes change (lazy rewriting) or the
    /// region layout changes; CPUs use it to invalidate decoded-instruction
    /// caches cheaply ("anything executable may have changed").
    code_generation: u64,
    /// Bounded log of executable-code mutations (see [`DirtySpan`]),
    /// coalesced on insert and queried by
    /// [`Memory::dirty_regions_since`]. Over-approximation is allowed
    /// (merged spans may cover untouched bytes); *losing* a span is not.
    edits: Vec<DirtySpan>,
    /// Index of the region that satisfied the last access (locality cache).
    last_hit: usize,
    /// The master image this memory was instantiated from, if pooled;
    /// recycling restores dirtied spans from it.
    master: Option<Arc<MasterImage>>,
}

/// Cap on the edit log: past this, the two closest spans merge into their
/// bounding span (a conservative over-approximation), keeping the log
/// O(1) in memory for arbitrarily long self-modifying runs.
const MAX_CODE_EDITS: usize = 128;

impl Memory {
    /// Creates empty memory.
    pub fn new() -> Self {
        Memory::default()
    }

    /// Maps a new zero-filled region. Panics on overlap (programming error
    /// in the loader, not a runtime condition).
    pub fn map(&mut self, start: u64, size: u64, perms: Perms, name: &str) {
        self.map_bytes(start, vec![0; size as usize], perms, name)
    }

    /// Maps a new region with the given contents.
    pub fn map_bytes(&mut self, start: u64, bytes: Vec<u8>, perms: Perms, name: &str) {
        let end = start + bytes.len() as u64;
        for r in &self.regions {
            assert!(
                end <= r.start || start >= r.end(),
                "region {name} [{start:#x},{end:#x}) overlaps {}",
                r.name
            );
        }
        let generation = next_generation();
        if perms.x {
            // Freshly mapped executable bytes are dirty in their entirety:
            // a remap at a previously rewritten address must re-dirty every
            // unit derived from it.
            self.record_edit(DirtySpan {
                start,
                end,
                generation,
            });
        }
        self.regions.push(Region {
            start,
            perms,
            backing: Backing::Owned(bytes),
            written: None,
            name: name.to_string(),
            generation,
        });
        self.regions.sort_by_key(|r| r.start);
        self.last_hit = 0;
        // Mapping can place new executable bytes at previously cached
        // addresses (view switching); force decode-cache revalidation.
        self.code_generation += 1;
    }

    /// Builds memory from a binary: every section becomes a region, plus a
    /// stack region under [`STACK_TOP`] ([`DEFAULT_STACK_SIZE`] bytes; use
    /// [`Memory::load_with_stack`] for workloads needing deeper stacks).
    pub fn load(binary: &Binary) -> Memory {
        Memory::load_with_stack(binary, DEFAULT_STACK_SIZE)
    }

    /// [`Memory::load`] with an explicit stack size. The stack always ends
    /// at [`STACK_TOP`], so the boot `sp` is identical whatever the size;
    /// only the lowest mapped stack address moves. Stacks are committed
    /// eagerly, which at hundreds of guests dominates the runtime's entire
    /// footprint (256 harts × 8 MiB = 2 GiB of zeroed, re-faulted pages) —
    /// hence the small [`DEFAULT_STACK_SIZE`] everywhere and
    /// [`Memory::instantiate_from`] for pooled spawns.
    pub fn load_with_stack(binary: &Binary, stack_size: u64) -> Memory {
        assert!(stack_size > 0, "stack must be at least one byte");
        let mut m = Memory::new();
        for s in &binary.sections {
            m.map_bytes(s.addr, s.data.clone(), s.perms, &s.name);
        }
        m.map(STACK_TOP - stack_size, stack_size, Perms::RW, "[stack]");
        m
    }

    /// Instantiates a pooled memory from a master image: every region is
    /// a clean copy-on-write view of the master's bytes, so the cost is
    /// O(regions) rather than O(bytes). Writes privatize the touched
    /// region; [`Memory::recycle`] later restores exactly the dirtied
    /// spans. Executable template regions are recorded in the dirty-region
    /// edit log with their fresh map-time generations, mirroring
    /// [`Memory::map_bytes`].
    pub fn instantiate_from(master: &Arc<MasterImage>) -> Memory {
        let mut m = Memory {
            regions: Vec::with_capacity(master.regions.len()),
            code_generation: 0,
            edits: Vec::new(),
            last_hit: 0,
            master: Some(master.clone()),
        };
        for src in &master.regions {
            let generation = next_generation();
            if src.perms.x {
                m.record_edit(DirtySpan {
                    start: src.start,
                    end: src.start + src.bytes.len() as u64,
                    generation,
                });
            }
            m.regions.push(Region {
                start: src.start,
                perms: src.perms,
                backing: Backing::Shared(src.bytes.clone()),
                written: None,
                name: src.name.clone(),
                generation,
            });
            m.code_generation += 1;
        }
        m
    }

    /// The master image this memory was instantiated from, if pooled.
    pub fn master(&self) -> Option<&Arc<MasterImage>> {
        self.master.as_ref()
    }

    /// Bytes of privately owned backing (copy-on-write regions that were
    /// never written contribute nothing). For a freshly instantiated slot
    /// this is 0; [`Memory::load`] commits everything eagerly.
    pub fn resident_bytes(&self) -> u64 {
        self.regions
            .iter()
            .map(|r| match &r.backing {
                Backing::Owned(v) => v.len() as u64,
                Backing::Shared(_) => 0,
            })
            .sum()
    }

    /// Total mapped bytes across all regions (owned or shared).
    pub fn mapped_bytes(&self) -> u64 {
        self.regions.iter().map(|r| r.len() as u64).sum()
    }

    /// Restores a pooled memory to its master image so the slot can be
    /// handed to the next spawn: only the spans a run actually wrote are
    /// copied back (the written-span log makes "zeroing" proportional to
    /// dirt, not to memory size), restored regions draw fresh generations
    /// (their bytes changed, so no decode cache may validate stale blocks),
    /// and the edit log is reset to the template's map-time state. Returns
    /// the number of restored bytes, or `None` when the memory is not
    /// recyclable — not pooled, or its region layout diverged from the
    /// master (map/unmap happened) — in which case the caller discards it.
    pub fn recycle(&mut self) -> Option<u64> {
        let master = self.master.clone()?;
        if self.regions.len() != master.regions.len() {
            return None;
        }
        for (r, m) in self.regions.iter().zip(master.regions.iter()) {
            if r.start != m.start
                || r.len() != m.bytes.len()
                || r.perms != m.perms
                || r.name != m.name
            {
                return None;
            }
        }
        let mut restored = 0u64;
        for (r, m) in self.regions.iter_mut().zip(master.regions.iter()) {
            let Some((lo, hi)) = r.written.take() else {
                // Never written: shared backings are still bit-identical to
                // the master, and privatized-but-unwritten backings (raw
                // load mirrors) were only read. Nothing to restore.
                continue;
            };
            match &mut r.backing {
                Backing::Owned(v) => v[lo..hi].copy_from_slice(&m.bytes[lo..hi]),
                Backing::Shared(_) => unreachable!("written implies privatized"),
            }
            restored += (hi - lo) as u64;
            // The restored bytes differ from what this generation was
            // stamped for; draw a fresh workspace-unique one.
            r.generation = next_generation();
        }
        // Reset the edit log to the template state a fresh instantiation
        // would carry: the whole span of every executable region, stamped
        // with its current generation.
        self.edits.clear();
        let spans: Vec<DirtySpan> = self
            .regions
            .iter()
            .filter(|r| r.perms.x)
            .map(|r| DirtySpan {
                start: r.start,
                end: r.end(),
                generation: r.generation,
            })
            .collect();
        for s in spans {
            self.record_edit(s);
        }
        self.code_generation += 1;
        self.last_hit = 0;
        Some(restored)
    }

    /// The regions, sorted by address.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// The current code generation (bumped by [`Memory::poke_code`]).
    pub fn code_generation(&self) -> u64 {
        self.code_generation
    }

    /// Raw view of the region containing `addr`, for the JIT tier's
    /// in-trace fast-path mirrors: `(backing pointer, start, len)`. Loads
    /// mirror any readable region; stores only writable *non-executable*
    /// regions, so the self-modifying-code generation bookkeeping in
    /// [`Memory::write`] can never be bypassed. The pointer stays valid
    /// until the region list changes (nothing reachable from guest
    /// execution does that) and is re-requested on every mirror refresh.
    ///
    /// Mirrors cache the pointer across guest instructions, so the backing
    /// is privatized here: a later copy-on-write privatization would
    /// reallocate a shared backing out from under the pointer, while an
    /// owned backing never moves (every guest store is an in-place
    /// fixed-length overwrite). Store mirrors additionally mark the whole
    /// region written — raw-pointer stores bypass the span tracking, so
    /// recycling must be conservative about them.
    pub(crate) fn region_raw(&mut self, addr: u64, store: bool) -> Option<(*mut u8, u64, usize)> {
        let idx = self.region_idx(addr)?;
        let r = &mut self.regions[idx];
        let ok = if store {
            r.perms.w && !r.perms.x
        } else {
            r.perms.r
        };
        if !ok {
            return None;
        }
        r.privatize();
        if store {
            let len = r.len();
            r.mark_written(0, len);
        }
        match &mut r.backing {
            Backing::Owned(v) => Some((v.as_mut_ptr(), r.start, v.len())),
            Backing::Shared(_) => unreachable!("privatized above"),
        }
    }

    fn region_idx(&mut self, addr: u64) -> Option<usize> {
        let r = &self.regions[self.last_hit.min(self.regions.len().saturating_sub(1))];
        if !self.regions.is_empty() && addr >= r.start && addr < r.end() {
            return Some(self.last_hit);
        }
        let idx = self
            .regions
            .partition_point(|r| r.end() <= addr)
            .min(self.regions.len().saturating_sub(1));
        let r = self.regions.get(idx)?;
        if addr >= r.start && addr < r.end() {
            self.last_hit = idx;
            Some(idx)
        } else {
            None
        }
    }

    /// Resolves an access to `(region index, offset)` after the permission
    /// and bounds checks, so callers that mutate (e.g. [`Memory::write`])
    /// can also update the region's generation bookkeeping.
    fn resolve(
        &mut self,
        addr: u64,
        len: usize,
        access: Access,
    ) -> Result<(usize, usize), MemFault> {
        let Some(idx) = self.region_idx(addr) else {
            return Err(MemFault {
                addr,
                access,
                mapped: false,
            });
        };
        let r = &self.regions[idx];
        let ok = match access {
            Access::Fetch => r.perms.x,
            Access::Load => r.perms.r,
            Access::Store => r.perms.w,
        };
        if !ok {
            return Err(MemFault {
                addr,
                access,
                mapped: true,
            });
        }
        let off = (addr - r.start) as usize;
        if off + len > r.len() {
            // Access runs off the end of the region.
            return Err(MemFault {
                addr: r.end(),
                access,
                mapped: false,
            });
        }
        Ok((idx, off))
    }

    /// Read-only access: never privatizes a copy-on-write backing.
    fn access(&mut self, addr: u64, len: usize, access: Access) -> Result<&[u8], MemFault> {
        let (idx, off) = self.resolve(addr, len, access)?;
        Ok(&self.regions[idx].bytes()[off..off + len])
    }

    /// Loads `N` bytes with R permission.
    pub fn read<const N: usize>(&mut self, addr: u64) -> Result<[u8; N], MemFault> {
        let b = self.access(addr, N, Access::Load)?;
        Ok(<[u8; N]>::try_from(b).expect("length checked"))
    }

    /// Stores bytes with W permission. A store into an *executable* region
    /// (self-modifying code on a writable+executable mapping) bumps both
    /// that region's generation and the global code generation, so decode
    /// caches invalidate before stale instructions could run.
    pub fn write(&mut self, addr: u64, bytes: &[u8]) -> Result<(), MemFault> {
        let (idx, off) = self.resolve(addr, bytes.len(), Access::Store)?;
        let r = &mut self.regions[idx];
        r.bytes_mut(off, off + bytes.len()).copy_from_slice(bytes);
        if r.perms.x {
            let generation = next_generation();
            r.generation = generation;
            self.code_generation += 1;
            self.record_edit(DirtySpan {
                start: addr,
                end: addr + bytes.len() as u64,
                generation,
            });
        }
        Ok(())
    }

    /// Loads `N` bytes with R permission through a [`RegionHint`].
    ///
    /// Fast path: the hinted region is bounds- and permission-checked
    /// directly (one compare each plus pointer arithmetic). Any failure —
    /// stale hint, region boundary, missing permission — falls back to
    /// [`Memory::read`]'s full resolution, which refreshes the hint, so
    /// results and faults are identical to the unhinted accessor.
    #[inline]
    pub fn read_hinted<const N: usize>(
        &mut self,
        hint: &mut RegionHint,
        addr: u64,
    ) -> Result<[u8; N], MemFault> {
        if let Some(r) = self.regions.get(hint.0 as usize) {
            if r.perms.r && addr >= r.start {
                let off = (addr - r.start) as usize;
                if let Some(b) = r.bytes().get(off..off.wrapping_add(N)) {
                    return Ok(<[u8; N]>::try_from(b).expect("length checked"));
                }
            }
        }
        let (idx, off) = self.resolve(addr, N, Access::Load)?;
        hint.0 = idx as u32;
        let b = &self.regions[idx].bytes()[off..off + N];
        Ok(<[u8; N]>::try_from(b).expect("length checked"))
    }

    /// Stores bytes with W permission through a [`RegionHint`].
    ///
    /// The fast path only engages for writable **non-executable** regions:
    /// stores into W+X mappings are self-modifying code and must go through
    /// [`Memory::write`]'s generation bookkeeping (the slow path below),
    /// which therefore never updates the hint with an executable region.
    #[inline]
    pub fn write_hinted(
        &mut self,
        hint: &mut RegionHint,
        addr: u64,
        bytes: &[u8],
    ) -> Result<(), MemFault> {
        if let Some(r) = self.regions.get_mut(hint.0 as usize) {
            if r.perms.w && !r.perms.x && addr >= r.start {
                let off = (addr - r.start) as usize;
                let end = off.wrapping_add(bytes.len());
                if off <= end && end <= r.len() {
                    r.bytes_mut(off, end).copy_from_slice(bytes);
                    return Ok(());
                }
            }
        }
        let (idx, off) = self.resolve(addr, bytes.len(), Access::Store)?;
        let r = &mut self.regions[idx];
        r.bytes_mut(off, off + bytes.len()).copy_from_slice(bytes);
        if r.perms.x {
            let generation = next_generation();
            r.generation = generation;
            self.code_generation += 1;
            self.record_edit(DirtySpan {
                start: addr,
                end: addr + bytes.len() as u64,
                generation,
            });
        } else {
            hint.0 = idx as u32;
        }
        Ok(())
    }

    /// Fetches a 16-bit parcel with X permission through a [`RegionHint`].
    #[inline]
    pub fn fetch_u16_hinted(&mut self, hint: &mut RegionHint, addr: u64) -> Result<u16, MemFault> {
        if let Some(r) = self.regions.get(hint.0 as usize) {
            if r.perms.x && addr >= r.start {
                let off = (addr - r.start) as usize;
                if let Some(b) = r.bytes().get(off..off.wrapping_add(2)) {
                    return Ok(u16::from_le_bytes([b[0], b[1]]));
                }
            }
        }
        let (idx, off) = self.resolve(addr, 2, Access::Fetch)?;
        hint.0 = idx as u32;
        let b = &self.regions[idx].bytes()[off..off + 2];
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Fetches a 16-bit parcel with X permission.
    pub fn fetch_u16(&mut self, addr: u64) -> Result<u16, MemFault> {
        let b = self.access(addr, 2, Access::Fetch)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Fetches a 32-bit word with X permission (both halves must be mapped
    /// executable).
    pub fn fetch_u32(&mut self, addr: u64) -> Result<u32, MemFault> {
        let b = self.access(addr, 4, Access::Fetch)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads bytes regardless of permissions (debugger/kernel view).
    pub fn peek(&mut self, addr: u64, len: usize) -> Option<Vec<u8>> {
        let idx = self.region_idx(addr)?;
        let r = &self.regions[idx];
        let off = (addr - r.start) as usize;
        r.bytes().get(off..off + len).map(<[u8]>::to_vec)
    }

    /// Writes code bytes regardless of permissions and bumps the code
    /// generation. This is the kernel's channel for lazy rewriting
    /// (patching an unrecognized instruction at fault time, §4.3).
    pub fn poke_code(&mut self, addr: u64, bytes: &[u8]) -> Result<(), MemFault> {
        let Some(idx) = self.region_idx(addr) else {
            return Err(MemFault {
                addr,
                access: Access::Store,
                mapped: false,
            });
        };
        let r = &mut self.regions[idx];
        let off = (addr - r.start) as usize;
        if off + bytes.len() > r.len() {
            return Err(MemFault {
                addr: r.end(),
                access: Access::Store,
                mapped: false,
            });
        }
        r.bytes_mut(off, off + bytes.len()).copy_from_slice(bytes);
        let generation = next_generation();
        r.generation = generation;
        self.code_generation += 1;
        self.record_edit(DirtySpan {
            start: addr,
            end: addr + bytes.len() as u64,
            generation,
        });
        Ok(())
    }

    /// Unmaps the region with the given name; `true` if found. Used by the
    /// kernel's MMView switching (per-view code sections come and go while
    /// shared data regions stay). Unmapping an *executable* region records
    /// its whole span as dirty with a fresh generation: the address range
    /// may be remapped with different code, and a remap itself draws a new
    /// workspace-unique generation, so a block cached against the old
    /// region can never validate against the remapped one.
    pub fn unmap(&mut self, name: &str) -> bool {
        let before = self.regions.len();
        let mut dirty: Vec<DirtySpan> = Vec::new();
        self.regions.retain(|r| {
            if r.name == name {
                if r.perms.x {
                    dirty.push(DirtySpan {
                        start: r.start,
                        end: r.end(),
                        generation: 0, // stamped below
                    });
                }
                false
            } else {
                true
            }
        });
        self.last_hit = 0;
        let removed = self.regions.len() != before;
        if removed {
            for mut span in dirty {
                span.generation = next_generation();
                self.record_edit(span);
            }
            // The address range may be remapped with different code; force
            // decode-cache revalidation.
            self.code_generation += 1;
        }
        removed
    }

    /// A watermark for [`Memory::dirty_regions_since`]: every code
    /// mutation from this moment on (in *any* `Memory` of the process —
    /// generations are workspace-global) carries a larger generation.
    pub fn generation_watermark(&self) -> u64 {
        GENERATION_SOURCE.load(Ordering::Relaxed)
    }

    /// The executable spans mutated since `watermark` (a value previously
    /// returned by [`Memory::generation_watermark`]), sorted by address.
    /// Spans are coalesced conservatively: a returned span may cover some
    /// untouched bytes, but every mutated byte since the watermark is
    /// covered. This is the signal incremental re-rewriting keys its
    /// dirty-unit set on.
    pub fn dirty_regions_since(&self, watermark: u64) -> Vec<DirtySpan> {
        let mut v: Vec<DirtySpan> = self
            .edits
            .iter()
            .filter(|e| e.generation > watermark)
            .copied()
            .collect();
        v.sort_by_key(|e| e.start);
        v
    }

    /// Appends one span to the edit log. Entries fully contained in the
    /// new span are absorbed (the new span covers them at a newer
    /// generation, so no watermark loses visibility); partially
    /// overlapping entries are kept separate to stay precise — merging
    /// them would make an old wide edit (e.g. the map-time whole-region
    /// span) swallow later pinpoint pokes and over-dirty every consumer.
    /// Past [`MAX_CODE_EDITS`], the two closest spans merge into their
    /// bounding span so the log stays bounded (a conservative
    /// over-approximation; dirtiness may widen but is never lost).
    fn record_edit(&mut self, span: DirtySpan) {
        let mut merged = span;
        self.edits.retain(|e| {
            if merged.start <= e.start && e.end <= merged.end {
                merged.generation = merged.generation.max(e.generation);
                false
            } else {
                true
            }
        });
        self.edits.push(merged);
        if self.edits.len() > MAX_CODE_EDITS {
            self.edits.sort_by_key(|e| e.start);
            let (mut best, mut gap) = (0, u64::MAX);
            for i in 0..self.edits.len() - 1 {
                let g = self.edits[i + 1].start.saturating_sub(self.edits[i].end);
                if g < gap {
                    (best, gap) = (i, g);
                }
            }
            let b = self.edits.remove(best + 1);
            let a = &mut self.edits[best];
            a.end = a.end.max(b.end);
            a.generation = a.generation.max(b.generation);
        }
    }

    /// The region with the given name, if mapped.
    pub fn region(&self, name: &str) -> Option<&Region> {
        self.regions.iter().find(|r| r.name == name)
    }

    /// The decode-cache validity token for the *executable* region holding
    /// `addr`: `(region start, region generation)`. `None` when `addr` is
    /// unmapped or not executable (the caller falls back to a plain fetch,
    /// which raises the architecturally correct fault). A cached block is
    /// valid iff the fingerprint it was built under still matches.
    pub fn code_fingerprint(&mut self, addr: u64) -> Option<(u64, u64)> {
        let idx = self.region_idx(addr)?;
        let r = &self.regions[idx];
        r.perms.x.then_some((r.start, r.generation))
    }

    /// Convenience typed accessors.
    pub fn read_u64(&mut self, addr: u64) -> Result<u64, MemFault> {
        Ok(u64::from_le_bytes(self.read::<8>(addr)?))
    }

    /// Reads a u32 with R permission.
    pub fn read_u32(&mut self, addr: u64) -> Result<u32, MemFault> {
        Ok(u32::from_le_bytes(self.read::<4>(addr)?))
    }

    /// Writes a u64 with W permission.
    pub fn write_u64(&mut self, addr: u64, v: u64) -> Result<(), MemFault> {
        self.write(addr, &v.to_le_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> Memory {
        let mut m = Memory::new();
        m.map_bytes(0x1000, vec![1, 2, 3, 4, 5, 6, 7, 8], Perms::RX, ".text");
        m.map(0x2000, 0x100, Perms::RW, ".data");
        m.map(0x3000, 0x100, Perms::R, ".rodata");
        m
    }

    #[test]
    fn fetch_requires_x() {
        let mut m = mem();
        assert_eq!(m.fetch_u16(0x1000).unwrap(), 0x0201);
        let e = m.fetch_u16(0x2000).unwrap_err();
        assert_eq!(e.access, Access::Fetch);
        assert!(e.mapped);
    }

    #[test]
    fn store_requires_w() {
        let mut m = mem();
        m.write(0x2000, &[9]).unwrap();
        assert!(m.write(0x3000, &[9]).is_err());
        assert!(m.write(0x1000, &[9]).is_err());
    }

    #[test]
    fn unmapped_reports_unmapped() {
        let mut m = mem();
        let e = m.read::<4>(0x9000).unwrap_err();
        assert!(!e.mapped);
    }

    #[test]
    fn access_cannot_cross_region_end() {
        let mut m = mem();
        assert!(m.read::<4>(0x1006).is_err());
    }

    #[test]
    fn poke_code_bumps_generation() {
        let mut m = mem();
        let g0 = m.code_generation();
        let fp0 = m.code_fingerprint(0x1000).unwrap();
        m.poke_code(0x1000, &[0xaa, 0xbb]).unwrap();
        assert!(m.code_generation() > g0);
        assert_ne!(m.code_fingerprint(0x1000).unwrap(), fp0);
        assert_eq!(m.fetch_u16(0x1000).unwrap(), 0xbbaa);
    }

    #[test]
    fn store_to_executable_region_bumps_generations() {
        let mut m = Memory::new();
        m.map(0x1000, 0x100, Perms::RWX, ".wx");
        m.map(0x2000, 0x100, Perms::RW, ".data");
        let g0 = m.code_generation();
        let fp0 = m.code_fingerprint(0x1000).unwrap();
        // A store to plain RW data must NOT bump the code generation.
        m.write(0x2000, &[1, 2, 3]).unwrap();
        assert_eq!(m.code_generation(), g0);
        // A store into the RWX region must bump both.
        m.write(0x1000, &[4, 5]).unwrap();
        assert!(m.code_generation() > g0);
        assert_ne!(m.code_fingerprint(0x1000).unwrap(), fp0);
    }

    #[test]
    fn fingerprint_is_none_for_non_executable_or_unmapped() {
        let mut m = mem();
        assert!(m.code_fingerprint(0x1000).is_some()); // RX .text
        assert!(m.code_fingerprint(0x2000).is_none()); // RW .data
        assert!(m.code_fingerprint(0x9000).is_none()); // unmapped
    }

    #[test]
    fn remap_at_same_address_changes_fingerprint() {
        let mut m = Memory::new();
        m.map(0x1000, 0x100, Perms::RX, ".text");
        let fp0 = m.code_fingerprint(0x1000).unwrap();
        let g0 = m.code_generation();
        assert!(m.unmap(".text"));
        assert!(m.code_generation() > g0);
        m.map(0x1000, 0x100, Perms::RX, ".text2");
        assert_ne!(m.code_fingerprint(0x1000).unwrap(), fp0);
    }

    #[test]
    fn hinted_accessors_match_unhinted_across_regions_and_faults() {
        let mut m = Memory::new();
        m.map_bytes(0x1000, (0..=255).collect(), Perms::RX, ".text");
        m.map(0x2000, 0x100, Perms::RW, ".data");
        m.map(0x3000, 0x100, Perms::R, ".rodata");
        let mut h = AccessHints::default();
        // Ping-pong across regions: every access must agree with the
        // unhinted path no matter how stale the hint is.
        for addr in [0x1000u64, 0x3000, 0x1004, 0x2000, 0x30f0, 0x1040] {
            let hinted = m.read_hinted::<4>(&mut h.load, addr);
            let plain = m.read::<4>(addr);
            assert_eq!(hinted, plain, "load at {addr:#x}");
        }
        // Faults are identical too: unmapped, permission, off-end.
        for addr in [0x9000u64, 0x30fe, 0x20fd] {
            assert_eq!(
                m.read_hinted::<4>(&mut h.load, addr).unwrap_err(),
                m.read::<4>(addr).unwrap_err(),
                "load fault at {addr:#x}"
            );
        }
        assert_eq!(
            m.write_hinted(&mut h.store, 0x3000, &[1]).unwrap_err(),
            m.write(0x3000, &[1]).unwrap_err()
        );
        // Hinted stores land and hinted fetches read the stored bytes back.
        m.write_hinted(&mut h.store, 0x2010, &[7, 8]).unwrap();
        assert_eq!(m.read::<2>(0x2010).unwrap(), [7, 8]);
        assert_eq!(
            m.fetch_u16_hinted(&mut h.fetch, 0x1002).unwrap(),
            m.fetch_u16(0x1002).unwrap()
        );
        assert_eq!(
            m.fetch_u16_hinted(&mut h.fetch, 0x2000).unwrap_err(),
            m.fetch_u16(0x2000).unwrap_err()
        );
    }

    #[test]
    fn hinted_store_to_wx_region_still_bumps_generations() {
        let mut m = Memory::new();
        m.map(0x1000, 0x100, Perms::RWX, ".wx");
        m.map(0x2000, 0x100, Perms::RW, ".data");
        let mut h = AccessHints::default();
        // Warm the hint on the W+X region's index via a plain-data store
        // first — the hint must never be *used* for the W+X region.
        m.write_hinted(&mut h.store, 0x2000, &[1]).unwrap();
        let g0 = m.code_generation();
        let fp0 = m.code_fingerprint(0x1000).unwrap();
        m.write_hinted(&mut h.store, 0x1000, &[0xaa]).unwrap();
        assert!(
            m.code_generation() > g0,
            "SMC bookkeeping must not be skipped"
        );
        assert_ne!(m.code_fingerprint(0x1000).unwrap(), fp0);
        // And repeated stores keep bumping (the hint never pins W+X).
        let g1 = m.code_generation();
        m.write_hinted(&mut h.store, 0x1001, &[0xbb]).unwrap();
        assert!(m.code_generation() > g1);
    }

    #[test]
    fn generations_are_workspace_unique_across_instances() {
        // Two independent memories mapping different code at the same
        // address must hand out different fingerprints: a decode cache
        // shared across them (differential runs, view switches through
        // fresh Memory instances) must never validate a stale block.
        let mut a = Memory::new();
        let mut b = Memory::new();
        a.map_bytes(0x1000, vec![1, 2, 3, 4], Perms::RX, ".text");
        b.map_bytes(0x1000, vec![5, 6, 7, 8], Perms::RX, ".text");
        assert_ne!(
            a.code_fingerprint(0x1000).unwrap(),
            b.code_fingerprint(0x1000).unwrap()
        );
    }

    #[test]
    fn dirty_regions_track_code_mutations_since_watermark() {
        let mut m = mem();
        let wm = m.generation_watermark();
        assert!(m.dirty_regions_since(wm).is_empty());

        // A data store is not a code mutation.
        m.write(0x2000, &[1, 2]).unwrap();
        assert!(m.dirty_regions_since(wm).is_empty());

        // A code poke is; its span and a later-than-watermark stamp land
        // in the query.
        m.poke_code(0x1002, &[0xaa, 0xbb]).unwrap();
        let d = m.dirty_regions_since(wm);
        assert_eq!(d.len(), 1);
        assert_eq!((d[0].start, d[0].end), (0x1002, 0x1004));
        assert!(d[0].generation > wm);

        // Advancing the watermark drains the view.
        let wm2 = m.generation_watermark();
        assert!(m.dirty_regions_since(wm2).is_empty());
        // ... but the old watermark still sees the old edit.
        assert_eq!(m.dirty_regions_since(wm).len(), 1);
    }

    #[test]
    fn repeated_pokes_at_one_site_keep_one_edit() {
        let mut m = mem();
        let wm = m.generation_watermark();
        for _ in 0..10 {
            m.poke_code(0x1002, &[3, 4]).unwrap();
        }
        let d = m.dirty_regions_since(wm);
        assert_eq!(d.len(), 1, "identical spans absorb, not accumulate: {d:?}");
        assert_eq!((d[0].start, d[0].end), (0x1002, 0x1004));
    }

    #[test]
    fn edit_log_stays_bounded_without_losing_dirty_bytes() {
        let mut m = Memory::new();
        m.map(0x1_0000, 0x20_0000, Perms::RX, ".text");
        let wm = m.generation_watermark();
        // Far-apart pokes (nothing coalesces on insert): the log must cap
        // via conservative merging, never by dropping a span.
        for i in 0..500u64 {
            m.poke_code(0x1_0000 + i * 0x1000, &[0u8; 2]).unwrap();
        }
        let d = m.dirty_regions_since(wm);
        assert!(d.len() <= MAX_CODE_EDITS, "log must stay bounded");
        for i in 0..500u64 {
            let a = 0x1_0000 + i * 0x1000;
            assert!(
                d.iter().any(|s| s.start <= a && a + 2 <= s.end),
                "poke at {a:#x} lost from the dirty log"
            );
        }
    }

    #[test]
    fn unmap_and_remap_record_dirty_spans() {
        let mut m = Memory::new();
        m.map(0x1000, 0x100, Perms::RX, ".text");
        m.map(0x2000, 0x100, Perms::RW, ".data");
        let wm = m.generation_watermark();
        // Unmapping a data region records nothing.
        assert!(m.unmap(".data"));
        assert!(m.dirty_regions_since(wm).is_empty());
        // Unmapping + remapping code dirties the whole span, with the
        // remap's generation matching the new region's stamp.
        assert!(m.unmap(".text"));
        let d = m.dirty_regions_since(wm);
        assert_eq!(d.len(), 1);
        assert_eq!((d[0].start, d[0].end), (0x1000, 0x1100));
        m.map(0x1000, 0x100, Perms::RX, ".text");
        let d = m.dirty_regions_since(wm);
        assert_eq!(d.len(), 1, "unmap+remap of the same span coalesces");
        assert_eq!(
            d[0].generation,
            m.code_fingerprint(0x1000).unwrap().1,
            "the remap edit carries the fresh region generation"
        );
    }

    #[test]
    fn load_binary_maps_stack() {
        use chimera_isa::ExtSet;
        use chimera_obj::{Section, TEXT_BASE};
        let bin = Binary {
            sections: vec![
                Section {
                    name: ".text".into(),
                    addr: TEXT_BASE,
                    data: vec![0x13, 0, 0, 0],
                    perms: Perms::RX,
                },
                Section {
                    name: ".data".into(),
                    addr: 0x2_0000,
                    data: vec![0; 0x1000],
                    perms: Perms::RW,
                },
            ],
            symbols: vec![],
            entry: TEXT_BASE,
            gp: 0x2_0800,
            profile: ExtSet::RV64GC,
        };
        let mut m = Memory::load(&bin);
        // Stack is writable.
        m.write_u64(STACK_TOP - 8, 42).unwrap();
        assert_eq!(m.read_u64(STACK_TOP - 8).unwrap(), 42);
        // Data is not executable: the SMILE precondition.
        assert!(m.fetch_u16(bin.gp).is_err());
        // The default stack is the small one; resident bytes stay bounded.
        assert_eq!(
            m.mapped_bytes(),
            4 + 0x1000 + DEFAULT_STACK_SIZE,
            "default load commits the 256 KiB stack, not 8 MiB"
        );
    }

    fn small_binary() -> Binary {
        use chimera_isa::ExtSet;
        use chimera_obj::{Section, TEXT_BASE};
        Binary {
            sections: vec![
                Section {
                    name: ".text".into(),
                    addr: TEXT_BASE,
                    data: vec![0x13, 0, 0, 0, 0x13, 0, 0, 0],
                    perms: Perms::RX,
                },
                Section {
                    name: ".data".into(),
                    addr: 0x2_0000,
                    data: vec![7; 0x100],
                    perms: Perms::RW,
                },
            ],
            symbols: vec![],
            entry: TEXT_BASE,
            gp: 0x2_0080,
            profile: ExtSet::RV64GC,
        }
    }

    #[test]
    fn instantiate_shares_then_writes_privatize() {
        let bin = small_binary();
        let master = Arc::new(MasterImage::new(&bin, 0x1000));
        let mut m = Memory::instantiate_from(&master);
        // Clean instantiation owns nothing: all regions are shared views.
        assert_eq!(m.resident_bytes(), 0);
        assert_eq!(m.mapped_bytes(), master.mapped_bytes());
        assert!(m.regions().iter().all(Region::is_shared));
        // Reads (even fetches and peeks) never privatize.
        assert_eq!(m.read::<4>(0x2_0000).unwrap(), [7; 4]);
        m.fetch_u16(bin.entry).unwrap();
        m.peek(STACK_TOP - 8, 8).unwrap();
        assert_eq!(m.resident_bytes(), 0);
        // A write privatizes exactly the touched region.
        m.write_u64(STACK_TOP - 8, 42).unwrap();
        assert_eq!(m.resident_bytes(), 0x1000);
        assert_eq!(m.read_u64(STACK_TOP - 8).unwrap(), 42);
        // The master's bytes are untouched: a sibling instantiation still
        // reads zeros.
        let mut sib = Memory::instantiate_from(&master);
        assert_eq!(sib.read_u64(STACK_TOP - 8).unwrap(), 0);
    }

    #[test]
    fn recycle_restores_only_dirtied_spans() {
        let bin = small_binary();
        let master = Arc::new(MasterImage::new(&bin, 0x1000));
        let mut m = Memory::instantiate_from(&master);
        m.write_u64(STACK_TOP - 8, 42).unwrap();
        m.write(0x2_0010, &[9; 8]).unwrap();
        let restored = m.recycle().expect("layout unchanged, recyclable");
        // Exactly the two written spans were restored, nothing else.
        assert_eq!(restored, 16);
        assert_eq!(m.read_u64(STACK_TOP - 8).unwrap(), 0);
        assert_eq!(m.read::<8>(0x2_0010).unwrap(), [7; 8]);
        // Privatized allocations stay warm for the next tenant.
        assert_eq!(m.resident_bytes(), 0x1000 + 0x100);
        // A second recycle with no writes restores nothing.
        assert_eq!(m.recycle(), Some(0));
    }

    #[test]
    fn recycle_draws_fresh_generations_for_poked_code() {
        let bin = small_binary();
        let master = Arc::new(MasterImage::new(&bin, 0x1000));
        let mut m = Memory::instantiate_from(&master);
        let fp0 = m.code_fingerprint(bin.entry).unwrap();
        let g0 = m.code_generation();
        m.poke_code(bin.entry, &[0xaa, 0xbb]).unwrap();
        let fp1 = m.code_fingerprint(bin.entry).unwrap();
        assert_ne!(fp0, fp1);
        m.recycle().unwrap();
        // Bytes are back to the master's, but under a generation no cache
        // has ever validated a block against.
        assert_eq!(m.fetch_u16(bin.entry).unwrap(), 0x0013);
        let fp2 = m.code_fingerprint(bin.entry).unwrap();
        assert_ne!(fp2, fp0);
        assert_ne!(fp2, fp1);
        assert!(m.code_generation() > g0);
        // And the restored text span is visible to a fresh dirty query,
        // exactly like a fresh instantiation's map-time span.
        let d = m.dirty_regions_since(0);
        assert!(
            d.iter()
                .any(|s| s.start <= bin.entry && bin.entry + 2 <= s.end),
            "restored code span missing from the edit log: {d:?}"
        );
    }

    #[test]
    fn recycle_refuses_layout_divergence() {
        let bin = small_binary();
        let master = Arc::new(MasterImage::new(&bin, 0x1000));
        // Unmapping a region makes the slot non-recyclable.
        let mut m = Memory::instantiate_from(&master);
        assert!(m.unmap(".data"));
        assert_eq!(m.recycle(), None);
        // So does mapping an extra one.
        let mut m = Memory::instantiate_from(&master);
        m.map(0x9_0000, 0x100, Perms::RW, ".extra");
        assert_eq!(m.recycle(), None);
        // And a plain loaded memory was never pooled at all.
        let mut m = Memory::load(&bin);
        assert_eq!(m.recycle(), None);
    }

    #[test]
    fn instantiated_memory_observes_like_eager_load() {
        // Same program bytes through both construction paths: every
        // accessor agrees, including faults.
        let bin = small_binary();
        let master = Arc::new(MasterImage::new(&bin, 0x1000));
        let mut pooled = Memory::instantiate_from(&master);
        let mut eager = Memory::load_with_stack(&bin, 0x1000);
        for addr in [bin.entry, 0x2_0000, 0x2_00ff, STACK_TOP - 8] {
            assert_eq!(pooled.peek(addr, 1), eager.peek(addr, 1), "{addr:#x}");
        }
        assert_eq!(
            pooled.read::<4>(0x9000).unwrap_err(),
            eager.read::<4>(0x9000).unwrap_err()
        );
        assert_eq!(
            pooled.write(bin.entry, &[1]).unwrap_err(),
            eager.write(bin.entry, &[1]).unwrap_err()
        );
        assert_eq!(pooled.mapped_bytes(), eager.mapped_bytes());
    }
}
