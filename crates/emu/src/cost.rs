//! The deterministic cycle-cost model.
//!
//! The reproduction does not model micro-architecture; it assigns each
//! instruction a fixed cost, scaled for vector operations by the number of
//! active elements. What matters for the paper's comparisons is the *ratio*
//! between (a) an inline SMILE trampoline (two ordinary instructions),
//! (b) a trap-based trampoline (a kernel round trip, [`CostModel::trap`]),
//! and (c) a Safer-style indirect-jump check (a short check sequence that
//! really exists as instructions in the rewritten binary) — those ratios are
//! what produce the Fig. 13 shape.

use chimera_isa::{FOpKind, Inst, OpKind, VArithOp};

/// Per-instruction-class cycle costs.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Simple ALU / control transfer.
    pub base: u64,
    /// Integer multiply.
    pub mul: u64,
    /// Integer divide/remainder.
    pub div: u64,
    /// Memory load.
    pub load: u64,
    /// Memory store.
    pub store: u64,
    /// Taken-branch / jump penalty (front-end redirect).
    pub redirect: u64,
    /// FP add/mul/FMA.
    pub fp: u64,
    /// FP divide.
    pub fp_div: u64,
    /// Vector instruction fixed overhead.
    pub vec_issue: u64,
    /// Vector cost per lane pair (the datapath retires 128 bits of vector
    /// work per cycle, matching dual-issue 256-bit-VLEN silicon).
    pub vec_lane: u64,
    /// Kernel trap round trip (trap-based trampolines, fault handling).
    pub trap: u64,
    /// A task-migration between cores (scheduler + context + cache warmup).
    pub migrate: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            base: 1,
            mul: 3,
            div: 20,
            load: 2,
            store: 2,
            redirect: 2,
            fp: 3,
            fp_div: 18,
            vec_issue: 1,
            vec_lane: 1,
            trap: 800,
            migrate: 4000,
        }
    }
}

impl CostModel {
    /// The cycle cost of executing `inst` with `vl` active vector elements
    /// of the current SEW (ignored for scalar instructions). `taken` is
    /// whether a control transfer actually redirected.
    pub fn cost(&self, inst: &Inst, vl_words: u64, taken: bool) -> u64 {
        let redirect = if taken { self.redirect } else { 0 };
        let lanes = vl_words.div_ceil(2);
        match inst {
            Inst::Load { .. } | Inst::FLoad { .. } => self.load,
            Inst::Store { .. } | Inst::FStore { .. } => self.store,
            Inst::Jal { .. } | Inst::Jalr { .. } => self.base + self.redirect,
            Inst::Branch { .. } => self.base + redirect,
            Inst::Op { kind, .. } => match kind {
                OpKind::Mul | OpKind::Mulh | OpKind::Mulhsu | OpKind::Mulhu | OpKind::Mulw => {
                    self.mul
                }
                OpKind::Div
                | OpKind::Divu
                | OpKind::Rem
                | OpKind::Remu
                | OpKind::Divw
                | OpKind::Divuw
                | OpKind::Remw
                | OpKind::Remuw => self.div,
                _ => self.base,
            },
            Inst::FOp { kind, .. } => match kind {
                FOpKind::Div => self.fp_div,
                _ => self.fp,
            },
            Inst::FMa { .. } => self.fp,
            Inst::FCmp { .. }
            | Inst::FMvToX { .. }
            | Inst::FMvToF { .. }
            | Inst::FCvtToF { .. }
            | Inst::FCvtToInt { .. }
            | Inst::FCvtFF { .. } => self.fp,
            Inst::Vsetvli { .. } => self.base,
            Inst::VLoad { .. } => self.load + self.vec_issue + self.vec_lane * lanes,
            Inst::VStore { .. } => self.store + self.vec_issue + self.vec_lane * lanes,
            Inst::VArith { op, .. } => {
                let scale = match op {
                    VArithOp::Vfdiv => 6,
                    VArithOp::Vredsum | VArithOp::Vfredusum => 2,
                    _ => 1,
                };
                self.vec_issue + scale * self.vec_lane * lanes
            }
            Inst::VMvXS { .. } | Inst::VMvSX { .. } => self.vec_issue + self.vec_lane,
            _ => self.base,
        }
    }

    /// The `(not taken, taken)` cycle costs of `inst` with zero active
    /// vector elements — what the micro-op lowering (`crate::uop`)
    /// pre-computes once per cached instruction. Only sound for non-vector
    /// instructions (vector costs depend on the live `vl`); the lowering
    /// guarantees this by routing vector instructions through its generic
    /// path, and the `vl_words_only_affects_vector_costs` test pins the
    /// model side of that contract.
    pub fn static_costs(&self, inst: &Inst) -> (u64, u64) {
        (self.cost(inst, 0, false), self.cost(inst, 0, true))
    }
}

/// Execution statistics accumulated by a CPU.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Retired instructions.
    pub instret: u64,
    /// Accumulated cycles under the cost model.
    pub cycles: u64,
    /// Executed vector-extension instructions.
    pub vector_insts: u64,
    /// Executed indirect jumps (`jalr`).
    pub indirect_jumps: u64,
    /// Executed conditional branches.
    pub branches: u64,
    /// Executed loads (scalar + vector).
    pub loads: u64,
    /// Executed stores (scalar + vector).
    pub stores: u64,
    /// `ebreak` executions (trap-based trampolines in baselines).
    pub ebreaks: u64,
}

impl ExecStats {
    /// Merges another stats block into this one.
    pub fn merge(&mut self, other: &ExecStats) {
        self.instret += other.instret;
        self.cycles += other.cycles;
        self.vector_insts += other.vector_insts;
        self.indirect_jumps += other.indirect_jumps;
        self.branches += other.branches;
        self.loads += other.loads;
        self.stores += other.stores;
        self.ebreaks += other.ebreaks;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chimera_isa::XReg;

    #[test]
    fn trap_dwarfs_trampoline() {
        let m = CostModel::default();
        let jalr = Inst::Jalr {
            rd: XReg::GP,
            rs1: XReg::GP,
            offset: 0,
        };
        let auipc = Inst::Auipc {
            rd: XReg::GP,
            imm20: 0,
        };
        let smile = m.cost(&auipc, 0, false) + m.cost(&jalr, 0, true);
        assert!(
            m.trap > 50 * smile,
            "trap must be orders of magnitude above a SMILE trampoline"
        );
    }

    #[test]
    fn vl_words_only_affects_vector_costs() {
        // The interpreter computes `vl_words` lazily, passing 0 for every
        // non-vector instruction; that is only sound while vector loads,
        // stores and arithmetic are the sole variants whose cost reads it.
        let m = CostModel::default();
        let scalars = [
            Inst::Lui {
                rd: XReg::GP,
                imm20: 1,
            },
            Inst::Jalr {
                rd: XReg::GP,
                rs1: XReg::GP,
                offset: 0,
            },
            Inst::Load {
                kind: chimera_isa::LoadKind::Ld,
                rd: XReg::GP,
                rs1: XReg::SP,
                offset: 0,
            },
            Inst::Store {
                kind: chimera_isa::StoreKind::Sd,
                rs1: XReg::SP,
                rs2: XReg::GP,
                offset: 0,
            },
            Inst::Vsetvli {
                rd: XReg::GP,
                rs1: XReg::GP,
                vtype: chimera_isa::VType {
                    sew: chimera_isa::Eew::E64,
                    lmul: 1,
                    ta: true,
                    ma: true,
                },
            },
            Inst::Ecall,
            Inst::Ebreak,
            chimera_isa::nop(),
        ];
        for inst in scalars {
            for taken in [false, true] {
                assert_eq!(
                    m.cost(&inst, 0, taken),
                    m.cost(&inst, 1000, taken),
                    "{inst:?} cost must not depend on vl_words"
                );
            }
        }
    }

    #[test]
    fn vector_cost_scales_with_elements() {
        let m = CostModel::default();
        let v = Inst::VArith {
            op: chimera_isa::VArithOp::Vadd,
            vd: chimera_isa::VReg::of(1),
            vs2: chimera_isa::VReg::of(2),
            src: chimera_isa::VSrc::V(chimera_isa::VReg::of(3)),
        };
        assert!(m.cost(&v, 8, false) > m.cost(&v, 2, false));
    }
}
