//! Pooled guest-memory slots: O(µs) process instantiation.
//!
//! A [`MemoryPool`] holds an immutable [`MasterImage`] (sections + zeroed
//! stack behind `Arc`s) and a free list of recycled [`Memory`] slots.
//! [`MemoryPool::acquire`] hands out a slot in O(regions): either a fresh
//! copy-on-write instantiation ([`Memory::instantiate_from`] — no bytes
//! copied) or a recycled slot whose dirtied spans were already restored
//! from the master on release. This is the memfd/pooling-allocator idea
//! from wasmtime applied to the region-granular memory model: spawn cost
//! is proportional to *dirt*, never to image size, which is what makes
//! churn-heavy many-guest scenarios (the `process_churn` gate) viable.

use crate::cpu::Cpu;
use crate::mem::{MasterImage, Memory};
use chimera_isa::{ExtSet, XReg};
use chimera_obj::STACK_TOP;
use std::sync::Arc;

/// Lifetime counters of a [`MemoryPool`] (all monotonic).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Slots built fresh from the master (free list was empty).
    pub instantiated: u64,
    /// Slots served from the free list.
    pub reused: u64,
    /// Slots restored and returned to the free list.
    pub recycled: u64,
    /// Slots dropped on release (layout diverged from the master, or the
    /// memory belonged to a different pool).
    pub discarded: u64,
    /// Total bytes restored from the master across all recycles.
    pub restored_bytes: u64,
}

/// A pool of pre-reservable guest-memory slots sharing one master image.
#[derive(Debug)]
pub struct MemoryPool {
    master: Arc<MasterImage>,
    free: Vec<Memory>,
    stats: PoolStats,
}

impl MemoryPool {
    /// A pool over `master` with an empty free list.
    pub fn new(master: MasterImage) -> MemoryPool {
        MemoryPool {
            master: Arc::new(master),
            free: Vec::new(),
            stats: PoolStats::default(),
        }
    }

    /// Pre-reserves `slots` instantiated memories on the free list, so the
    /// first `slots` acquisitions never construct region vectors under
    /// latency measurement.
    pub fn prewarm(&mut self, slots: usize) {
        while self.free.len() < slots {
            self.free.push(Memory::instantiate_from(&self.master));
            self.stats.instantiated += 1;
        }
    }

    /// The shared master image.
    pub fn master(&self) -> &Arc<MasterImage> {
        &self.master
    }

    /// Slots currently on the free list.
    pub fn free_slots(&self) -> usize {
        self.free.len()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Hands out a memory slot: recycled if one is free, otherwise a fresh
    /// copy-on-write instantiation. Either way the slot observes exactly
    /// like an eager [`Memory::load`] of the same image.
    pub fn acquire(&mut self) -> Memory {
        match self.free.pop() {
            Some(m) => {
                self.stats.reused += 1;
                m
            }
            None => {
                self.stats.instantiated += 1;
                Memory::instantiate_from(&self.master)
            }
        }
    }

    /// Returns a slot to the pool. On success the dirtied spans were
    /// restored from the master ([`Memory::recycle`]) and the restored
    /// byte count is returned; `None` means the slot was discarded — it
    /// belonged to another pool, or its region layout diverged from the
    /// master (map/unmap happened) and restoring is not possible.
    pub fn release(&mut self, mut mem: Memory) -> Option<u64> {
        let ours = mem.master().is_some_and(|m| Arc::ptr_eq(m, &self.master));
        if !ours {
            self.stats.discarded += 1;
            return None;
        }
        match mem.recycle() {
            Some(restored) => {
                self.stats.recycled += 1;
                self.stats.restored_bytes += restored;
                self.free.push(mem);
                Some(restored)
            }
            None => {
                self.stats.discarded += 1;
                None
            }
        }
    }
}

/// Boots a CPU on a pooled memory slot: acquires a slot and sets pc/sp/gp
/// from the master image, mirroring [`crate::boot`] for eager loads.
pub fn boot_pooled(pool: &mut MemoryPool, profile: ExtSet) -> (Cpu, Memory) {
    let mem = pool.acquire();
    let mut cpu = Cpu::new(profile);
    cpu.hart.pc = pool.master().entry();
    cpu.hart.set_x(XReg::SP, STACK_TOP - 64);
    cpu.hart.set_x(XReg::GP, pool.master().gp());
    (cpu, mem)
}
