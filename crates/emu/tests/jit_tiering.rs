//! Tiering-policy tests for the host-code JIT: promotion thresholds are
//! deterministic (same dispatch history, same promotion point — on every
//! run and regardless of how many other harts exist), `set_mode` resets
//! the hotness ledger, and the sever-penalty hysteresis keeps alternating
//! SMC from ping-ponging between compile and sever forever.
//!
//! Everything here is about *when* compilation happens, not *what* the
//! compiled code does — transparency is pinned by `tests/differential.rs`
//! and the fuzzing oracle. The policy itself (heat counters, penalties)
//! is pure bookkeeping, so these tests run on every host; assertions
//! about actual compilation (`jit_compiled`, resident traces) are gated
//! on [`chimera_emu::jit_available`].

use chimera_emu::{Cpu, ExecMode, Memory, Stop, Trap};
use chimera_isa::{encode, ExtSet, Inst, OpImmKind, XReg};
use chimera_obj::Perms;

const BASE: u64 = 0x1_0000;

fn addi(rd: XReg, rs1: XReg, imm: i32) -> Inst {
    Inst::OpImm {
        kind: OpImmKind::Addi,
        rd,
        rs1,
        imm,
    }
}

fn words(insts: &[Inst]) -> Vec<u8> {
    let mut bytes = Vec::new();
    for i in insts {
        bytes.extend_from_slice(&encode(i).unwrap().to_le_bytes());
    }
    bytes
}

fn program(imm: i32) -> Vec<u8> {
    words(&[addi(XReg::A0, XReg::ZERO, imm), Inst::Ecall])
}

fn jit_cpu(threshold: u32) -> Cpu {
    let mut cpu = Cpu::new(ExtSet::RV64GC);
    cpu.set_mode(ExecMode::Jit);
    cpu.set_jit_threshold(threshold);
    cpu
}

fn run_to_ecall(cpu: &mut Cpu, mem: &mut Memory) -> u64 {
    cpu.hart.pc = BASE;
    match cpu.run(mem, 100_000) {
        Stop::Trap(Trap::Ecall { .. }) => cpu.hart.get_x(XReg::A0),
        other => panic!("expected ecall, got {other:?}"),
    }
}

/// The promotion point is a pure function of the dispatch count: below
/// the threshold the pc only heats up, at the threshold it compiles —
/// identically on every run of the same history.
#[test]
fn promotion_threshold_is_deterministic() {
    let mut per_run = Vec::new();
    for _ in 0..3 {
        let mut cpu = jit_cpu(3);
        let mut mem = Memory::new();
        mem.map_bytes(BASE, program(9), Perms::RX, ".text");
        let mut history = Vec::new();
        for entry in 1..=4u32 {
            assert_eq!(run_to_ecall(&mut cpu, &mut mem), 9);
            history.push((entry, cpu.jit_hotness(BASE), cpu.jit_compiled()));
        }
        per_run.push(history);
    }
    assert_eq!(per_run[0], per_run[1], "tiering must be deterministic");
    assert_eq!(per_run[1], per_run[2], "tiering must be deterministic");
    if chimera_emu::jit_available() {
        // Entries 1 and 2 only accumulate heat; entry 3 promotes (heat
        // ledger cleared); entry 4 runs the compiled trace.
        assert_eq!(per_run[0][0], (1, 1, 0), "{:?}", per_run[0]);
        assert_eq!(per_run[0][1], (2, 2, 0), "{:?}", per_run[0]);
        assert_eq!(per_run[0][2], (3, 0, 1), "{:?}", per_run[0]);
        assert_eq!(per_run[0][3], (4, 0, 1), "{:?}", per_run[0]);
    }
}

/// Hotness is per-`Cpu` state: harts heat up independently, and a hart's
/// promotion point does not depend on how many sibling harts are running
/// the same code.
#[test]
fn promotion_is_per_hart_and_count_invariant() {
    let solo = {
        let mut cpu = jit_cpu(2);
        let mut mem = Memory::new();
        mem.map_bytes(BASE, program(5), Perms::RX, ".text");
        for _ in 0..3 {
            assert_eq!(run_to_ecall(&mut cpu, &mut mem), 5);
        }
        (cpu.jit_hotness(BASE), cpu.jit_compiled(), cpu.stats)
    };

    // Four harts, interleaved round-robin over the same image: each hart
    // sees exactly the history the solo hart saw.
    let mut harts: Vec<(Cpu, Memory)> = (0..4)
        .map(|_| {
            let mut mem = Memory::new();
            mem.map_bytes(BASE, program(5), Perms::RX, ".text");
            (jit_cpu(2), mem)
        })
        .collect();
    for _round in 0..3 {
        for (cpu, mem) in harts.iter_mut() {
            assert_eq!(run_to_ecall(cpu, mem), 5);
        }
    }
    for (i, (cpu, _)) in harts.iter().enumerate() {
        assert_eq!(
            (cpu.jit_hotness(BASE), cpu.jit_compiled(), cpu.stats),
            solo,
            "hart {i} diverged from the solo run"
        );
    }
}

/// `set_mode` mid-run resets the hotness ledger and flushes resident
/// traces: a mode round-trip means re-proving hotness from zero, never
/// re-entering a trace compiled under the previous mode epoch.
#[test]
fn set_mode_resets_hotness_and_traces() {
    let mut cpu = jit_cpu(4);
    let mut mem = Memory::new();
    mem.map_bytes(BASE, program(7), Perms::RX, ".text");

    // Two entries: warm but below threshold.
    for _ in 0..2 {
        assert_eq!(run_to_ecall(&mut cpu, &mut mem), 7);
    }
    assert_eq!(cpu.jit_hotness(BASE), 2);

    // Mode round trip: the ledger restarts from zero.
    cpu.set_mode(ExecMode::Engine);
    cpu.set_mode(ExecMode::Jit);
    cpu.set_jit_threshold(4);
    assert_eq!(cpu.jit_hotness(BASE), 0, "set_mode must reset hotness");

    // A resident trace is flushed by the round trip too.
    cpu.set_jit_threshold(1);
    assert_eq!(run_to_ecall(&mut cpu, &mut mem), 7);
    if chimera_emu::jit_available() {
        assert!(cpu.jit_trace_bytes(BASE).is_some(), "trace resident");
    }
    cpu.set_mode(ExecMode::Engine);
    cpu.set_mode(ExecMode::Jit);
    assert!(
        cpu.jit_trace_bytes(BASE).is_none(),
        "set_mode must flush resident traces"
    );
}

/// Alternating SMC at one pc must not ping-pong compile/sever forever:
/// every sever doubles that pc's effective threshold, so across N
/// poke-run rounds the number of compilations grows logarithmically, not
/// linearly — while every run still executes the freshly poked bytes.
#[test]
fn alternating_smc_does_not_ping_pong() {
    if !chimera_emu::jit_available() {
        eprintln!("skipping: no executable pages on this host");
        return;
    }
    let mut cpu = jit_cpu(1);
    let mut mem = Memory::new();
    mem.map_bytes(BASE, program(1), Perms::RX, ".text");
    assert_eq!(run_to_ecall(&mut cpu, &mut mem), 1);
    assert_eq!(cpu.jit_compiled(), 1);

    const ROUNDS: u64 = 30;
    for round in 0..ROUNDS {
        let imm = 1 + (round % 2) as i32;
        mem.poke_code(BASE, &program(imm)).unwrap();
        assert_eq!(
            run_to_ecall(&mut cpu, &mut mem),
            imm as u64,
            "round {round}: must execute the poked bytes"
        );
    }
    let compiled = cpu.jit_compiled();
    assert!(
        compiled <= 6,
        "hysteresis failed: {compiled} compilations across {ROUNDS} \
         poke rounds (penalties must escalate, got ping-pong)"
    );
    assert!(compiled >= 2, "re-promotion must still be possible");
}
