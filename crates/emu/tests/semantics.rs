//! Detailed ISA semantics: edge cases of the RV64 model that the rewriter
//! and translation templates depend on.

use chimera_emu::{run_binary, run_binary_on};
use chimera_isa::ExtSet;
use chimera_obj::{assemble, AsmOptions};

fn exit_of(src: &str) -> i64 {
    let bin = assemble(src, AsmOptions::default()).expect("assembles");
    run_binary(&bin, 10_000_000).expect("runs").exit_code
}

#[test]
fn rotates_and_shifts() {
    assert_eq!(
        exit_of(
            "
            _start:
                li t0, 1
                ror t1, t0, t0      # rotate 1 right by 1 = 1<<63
                srli t1, t1, 60     # 8
                li t2, 0x10
                rol t3, t2, t0      # 0x20
                add a0, t1, t3      # 40
                rori t4, t0, 63     # 1 rot right 63 = 2
                add a0, a0, t4      # 42
                li a7, 93
                ecall
            "
        ),
        42
    );
}

#[test]
fn slt_family_signedness() {
    assert_eq!(
        exit_of(
            "
            _start:
                li t0, -1
                li t1, 1
                slt t2, t0, t1      # -1 < 1 (signed) = 1
                sltu t3, t0, t1     # umax < 1 = 0
                slti t4, t0, 0      # 1
                sltiu t5, t0, -1    # umax < umax = 0... sltiu sext imm: equal -> 0
                slli t2, t2, 2      # 4
                slli t4, t4, 1      # 2
                add a0, t2, t4
                add a0, a0, t3
                add a0, a0, t5      # 6
                li a7, 93
                ecall
            "
        ),
        6
    );
}

#[test]
fn word_ops_sign_extend() {
    assert_eq!(
        exit_of(
            "
            _start:
                li t0, 0x7fffffff
                addiw t1, t0, 1     # wraps to -2^31, sign extended
                srai t1, t1, 31     # -1
                addi a0, t1, 43     # 42
                li a7, 93
                ecall
            "
        ),
        42
    );
}

#[test]
fn mulh_variants() {
    assert_eq!(
        exit_of(
            "
            _start:
                li t0, -1
                li t1, 2
                mulh t2, t0, t1     # (-1 * 2) >> 64 = -1
                mulhu t3, t0, t1    # (2^64-1)*2 >> 64 = 1
                add a0, t2, t3      # 0
                addi a0, a0, 5
                li a7, 93
                ecall
            "
        ),
        5
    );
}

#[test]
fn fp_nan_comparisons_are_false() {
    assert_eq!(
        exit_of(
            "
            .data
            nanbits: .dword 0x7ff8000000000000
            .text
            _start:
                la t0, nanbits
                fld fa0, 0(t0)
                fmv.d.x fa1, zero
                feq.d t1, fa0, fa0    # NaN == NaN -> 0
                flt.d t2, fa0, fa1    # 0
                fle.d t3, fa1, fa1    # 1
                add a0, t1, t2
                add a0, a0, t3        # 1
                li a7, 93
                ecall
            "
        ),
        1
    );
}

#[test]
fn fcvt_saturates_like_hardware() {
    // NaN converts to the maximum value (RISC-V), not 0 (Rust `as`).
    assert_eq!(
        exit_of(
            "
            .data
            nanbits: .dword 0x7ff8000000000000
            .text
            _start:
                la t0, nanbits
                fld fa0, 0(t0)
                fcvt.w.d t1, fa0     # i32::MAX
                li t2, 0x7fffffff
                sub a0, t1, t2       # 0
                li a7, 93
                ecall
            "
        ),
        0
    );
}

#[test]
fn vector_e32_arithmetic() {
    assert_eq!(
        exit_of(
            "
            .data
            a: .word 100
               .word 200
               .word 300
               .word 400
               .word 500
               .word 600
               .word 700
               .word 800
            .text
            _start:
                li t0, 8
                vsetvli t1, t0, e32, m1, ta, ma
                la a0, a
                vle32.v v1, (a0)
                vadd.vi v2, v1, 1
                vmv.v.i v3, 0
                vredsum.vs v4, v2, v3
                vmv.x.s a0, v4       # 3600 + 8
                li a7, 93
                ecall
            "
        ),
        3608
    );
}

#[test]
fn vector_min_max_signed() {
    assert_eq!(
        exit_of(
            "
            .data
            a: .dword -5
               .dword 10
               .dword -20
               .dword 7
            .text
            _start:
                li t0, 4
                vsetvli t1, t0, e64, m1, ta, ma
                la a0, a
                vle64.v v1, (a0)
                vmv.v.i v2, 0
                vmax.vv v3, v1, v2   # [0,10,0,7]
                vmin.vv v4, v1, v2   # [-5,0,-20,0]
                vmv.v.i v5, 0
                vredsum.vs v6, v3, v5   # 17
                vredsum.vs v7, v4, v5   # -25
                vmv.x.s t2, v6
                vmv.x.s t3, v7
                add a0, t2, t3       # -8
                neg a0, a0
                li a7, 93
                ecall
            "
        ),
        8
    );
}

#[test]
fn vector_partial_vl_keeps_tail() {
    // vl = 3 of 4 lanes: the 4th element must be untouched.
    assert_eq!(
        exit_of(
            "
            .data
            a: .dword 1
               .dword 1
               .dword 1
               .dword 99
            .text
            _start:
                li t0, 4
                vsetvli t1, t0, e64, m1, ta, ma
                la a0, a
                vle64.v v1, (a0)
                li t0, 3
                vsetvli t1, t0, e64, m1, ta, ma
                vadd.vi v1, v1, 10   # only first 3 lanes
                li t0, 4
                vsetvli t1, t0, e64, m1, ta, ma
                vmv.v.i v2, 0
                vredsum.vs v3, v1, v2  # 11*3 + 99
                vmv.x.s a0, v3
                li a7, 93
                ecall
            "
        ),
        132
    );
}

#[test]
fn vsetvli_clamps_to_vlmax() {
    assert_eq!(
        exit_of(
            "
            _start:
                li t0, 1000
                vsetvli a0, t0, e64, m1, ta, ma   # VLMAX = 4
                li a7, 93
                ecall
            "
        ),
        4
    );
}

#[test]
fn sltiu_seqz_idiom() {
    assert_eq!(
        exit_of(
            "
            _start:
                li t0, 0
                seqz a0, t0       # 1
                li t1, 7
                snez t2, t1       # 1
                add a0, a0, t2    # 2
                li a7, 93
                ecall
            "
        ),
        2
    );
}

#[test]
fn c_extension_gating_is_encoding_level() {
    // The same canonical instruction passes on a no-C core when encoded
    // 4-byte, and traps when encoded compressed.
    // Immediates small enough for the c.addi form.
    let src = "
        _start:
            addi a0, a0, 21
            addi a0, a0, 21
            li a7, 93
            ecall
    ";
    let no_c = ExtSet::RV64GC.without(chimera_isa::Ext::C);
    let fat = assemble(src, AsmOptions::default()).unwrap();
    assert_eq!(run_binary_on(&fat, no_c, 1000).unwrap().exit_code, 42);
    let slim = assemble(
        src,
        AsmOptions {
            compress: true,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(run_binary_on(&slim, no_c, 1000).is_err());
}

#[test]
fn stack_discipline_roundtrip() {
    assert_eq!(
        exit_of(
            "
            _start:
                li t0, 21
                addi sp, sp, -32
                sd t0, 0(sp)
                sd t0, 8(sp)
                ld t1, 0(sp)
                ld t2, 8(sp)
                addi sp, sp, 32
                add a0, t1, t2
                li a7, 93
                ecall
            "
        ),
        42
    );
}

#[test]
fn megamorphic_jalr_stays_transparent_under_jump_cache_eviction() {
    // One indirect-jump site cycling through more distinct targets than
    // the direct-mapped jump cache has entries (2304 > 2048): every
    // dispatch evicts, the block-chaining fast path keeps mispredicting,
    // and the engine must still be bit-transparent to the reference
    // interpreter — with the cache counters reconciling exactly.
    use chimera_emu::ExecMode;
    use chimera_testutil::observe_mode;

    const TARGETS: usize = 2304;
    let mut src = String::from(".data\ntable:");
    for i in 0..TARGETS {
        src.push_str(&format!(" .dword t{i}\n"));
    }
    src.push_str(
        ".text\n_start:\n    li s2, 0\n    la s3, table\nloop:\n    slli t0, s2, 3\n    add t0, t0, s3\n    ld t1, 0(t0)\n    jalr t1\n    addi s2, s2, 1\n",
    );
    src.push_str(&format!("    li t2, {TARGETS}\n    blt s2, t2, loop\n"));
    src.push_str("    andi a0, a0, 255\n    li a7, 93\n    ecall\n");
    for i in 0..TARGETS {
        src.push_str(&format!("t{i}: addi a0, a0, {}\n    ret\n", i % 7 + 1));
    }
    let bin = assemble(&src, AsmOptions::default()).expect("assembles");

    let expected: i64 = ((0..TARGETS).map(|i| i % 7 + 1).sum::<usize>() & 255) as i64;
    let fuel = 10_000_000;
    let (reference, ref_stats) =
        observe_mode(&bin, ExtSet::RV64GC, ExecMode::Reference, false, fuel);
    assert_eq!(
        reference
            .result
            .as_ref()
            .expect("reference run exits")
            .exit_code,
        expected
    );
    assert_eq!(
        (ref_stats.hits, ref_stats.misses, ref_stats.blocks_built),
        (0, 0, 0)
    );

    let (interp, is) = observe_mode(&bin, ExtSet::RV64GC, ExecMode::Interpreter, true, fuel);
    let (engine, es) = observe_mode(&bin, ExtSet::RV64GC, ExecMode::Engine, true, fuel);
    assert_eq!(interp, reference, "cached interpreter transparent");
    assert_eq!(engine, reference, "micro-op engine transparent");

    // Counter reconciliation under sustained eviction: every cached
    // dispatch the interpreter counts as a hit is, on the engine side,
    // either a plain hit or a chained block transfer.
    assert_eq!(is.hits, es.hits + es.chained, "{is:?} vs {es:?}");
    assert_eq!(is.misses, es.misses, "{is:?} vs {es:?}");
    assert_eq!(is.blocks_built, es.blocks_built, "{is:?} vs {es:?}");
    // The workload actually engaged the cache and built blocks for the
    // target spread (each distinct target head is its own block).
    assert!(es.blocks_built >= TARGETS as u64, "{es:?}");
    assert!(es.hits + es.chained > 0, "{es:?}");
}
