//! Self-modifying-code invalidation tests for the basic-block decode cache.
//!
//! The cache's correctness contract: a stale decoded block is *never*
//! executed. Executable bytes can change through [`Memory::poke_code`]
//! (the kernel's lazy-rewriting path), through guest stores to W+X
//! mappings (JIT-style self-modification), and through remapping a region
//! at the same address — each must invalidate affected blocks, and the
//! cached run must remain bit-identical to the uncached reference
//! interpreter.

use chimera_emu::{Cpu, Memory, Stop, Trap};
use chimera_isa::{encode, BranchKind, ExtSet, Inst, OpImmKind, StoreKind, XReg};
use chimera_obj::Perms;

const BASE: u64 = 0x1_0000;

fn addi(rd: XReg, rs1: XReg, imm: i32) -> Inst {
    Inst::OpImm {
        kind: OpImmKind::Addi,
        rd,
        rs1,
        imm,
    }
}

fn words(insts: &[Inst]) -> Vec<u8> {
    let mut bytes = Vec::new();
    for i in insts {
        bytes.extend_from_slice(&encode(i).unwrap().to_le_bytes());
    }
    bytes
}

/// Runs from `BASE` until the program's `ecall`, returning `a0`.
fn run_to_ecall(cpu: &mut Cpu, mem: &mut Memory) -> u64 {
    cpu.hart.pc = BASE;
    match cpu.run(mem, 100_000) {
        Stop::Trap(Trap::Ecall { .. }) => cpu.hart.get_x(XReg::A0),
        other => panic!("expected ecall, got {other:?}"),
    }
}

/// `poke_code` between runs: the second run must execute the NEW bytes
/// even though the old block is cached and was hit before.
#[test]
fn poke_code_between_runs_executes_new_code() {
    let mut cpu = Cpu::new(ExtSet::RV64GC);
    let mut mem = Memory::new();
    mem.map_bytes(
        BASE,
        words(&[addi(XReg::A0, XReg::ZERO, 11), Inst::Ecall]),
        Perms::RX,
        ".text",
    );

    assert_eq!(run_to_ecall(&mut cpu, &mut mem), 11);
    // Second run: served from the cache.
    assert_eq!(run_to_ecall(&mut cpu, &mut mem), 11);
    assert!(cpu.cache.stats.hits >= 1, "{:?}", cpu.cache.stats);
    let invalidations_before = cpu.cache.stats.invalidations;

    // The kernel patches the instruction (lazy-rewriting path).
    mem.poke_code(BASE, &words(&[addi(XReg::A0, XReg::ZERO, 22)]))
        .unwrap();

    // A stale block would yield 11 here.
    assert_eq!(run_to_ecall(&mut cpu, &mut mem), 22);
    assert!(
        cpu.cache.stats.invalidations > invalidations_before,
        "patching executable bytes must show up in the counters: {:?}",
        cpu.cache.stats
    );
}

/// A guest store into its *own basic block*, overwriting an instruction
/// that comes later in the same block: the new instruction must execute,
/// exactly as in the uncached reference interpreter.
#[test]
fn in_block_store_executes_new_code() {
    // sw t1, 8(t0)        <- overwrites the inst at BASE+8
    // addi a0, a0, 1
    // addi a0, a0, 1      <- replaced by `addi a0, a0, 100` mid-block
    // ecall
    let prog = words(&[
        Inst::Store {
            kind: StoreKind::Sw,
            rs1: XReg::T0,
            rs2: XReg::T1,
            offset: 8,
        },
        addi(XReg::A0, XReg::A0, 1),
        addi(XReg::A0, XReg::A0, 1),
        Inst::Ecall,
    ]);
    let new_inst = encode(&addi(XReg::A0, XReg::A0, 100)).unwrap();

    let mut results = Vec::new();
    for cached in [true, false] {
        let mut cpu = if cached {
            Cpu::new(ExtSet::RV64GC)
        } else {
            Cpu::new_uncached(ExtSet::RV64GC)
        };
        let mut mem = Memory::new();
        mem.map_bytes(BASE, prog.clone(), Perms::RWX, ".jit");
        cpu.hart.set_x(XReg::T0, BASE);
        cpu.hart.set_x(XReg::T1, new_inst as u64);
        assert_eq!(
            run_to_ecall(&mut cpu, &mut mem),
            101,
            "cached={cached}: the overwritten instruction must execute"
        );
        results.push((cpu.hart.xregs(), cpu.stats));
    }
    // Registers and every stats counter (cycles included) are identical.
    assert_eq!(results[0], results[1], "cache must be transparent");
}

/// Unmapping and remapping different code at the same address must not
/// serve blocks decoded from the old mapping.
#[test]
fn remap_at_same_address_invalidates() {
    let mut cpu = Cpu::new(ExtSet::RV64GC);
    let mut mem = Memory::new();
    mem.map_bytes(
        BASE,
        words(&[addi(XReg::A0, XReg::ZERO, 1), Inst::Ecall]),
        Perms::RX,
        "gen1",
    );
    assert_eq!(run_to_ecall(&mut cpu, &mut mem), 1);

    assert!(mem.unmap("gen1"));
    mem.map_bytes(
        BASE,
        words(&[addi(XReg::A0, XReg::ZERO, 2), Inst::Ecall]),
        Perms::RX,
        "gen2",
    );
    assert_eq!(
        run_to_ecall(&mut cpu, &mut mem),
        2,
        "stale block from the unmapped region must not execute"
    );
}

/// Counter sanity on a loop: a handful of blocks, hit-dominated re-entry,
/// and bit-identical results/cycles against the uncached interpreter.
#[test]
fn loop_is_hit_dominated_and_cycle_identical() {
    let prog = words(&[
        addi(XReg::T0, XReg::ZERO, 100),
        addi(XReg::A0, XReg::ZERO, 0),
        addi(XReg::A0, XReg::A0, 2), // loop:
        addi(XReg::T0, XReg::T0, -1),
        Inst::Branch {
            kind: BranchKind::Bne,
            rs1: XReg::T0,
            rs2: XReg::ZERO,
            offset: -8,
        },
        Inst::Ecall,
    ]);

    let mut cached = Cpu::new(ExtSet::RV64GC);
    let mut mem = Memory::new();
    mem.map_bytes(BASE, prog.clone(), Perms::RX, ".text");
    assert_eq!(run_to_ecall(&mut cached, &mut mem), 200);

    let s = cached.cache.stats;
    assert!(s.blocks_built >= 2, "{s:?}");
    assert!(s.blocks_built <= 4, "straight-line loop, few blocks: {s:?}");
    assert!(s.misses >= s.blocks_built, "{s:?}");
    // Re-entries are either dispatcher hits or (under the engine front
    // end) chained follows; together they must dominate the misses.
    assert!(
        s.hits + s.chained > s.misses,
        "100 iterations must be re-entry-dominated: {s:?}"
    );
    assert!(
        s.chained > s.misses,
        "a hot loop must run on chain links, not dispatches: {s:?}"
    );
    assert_eq!(s.invalidations, 0, "nothing was modified: {s:?}");

    let mut reference = Cpu::new_uncached(ExtSet::RV64GC);
    let mut mem2 = Memory::new();
    mem2.map_bytes(BASE, prog, Perms::RX, ".text");
    assert_eq!(run_to_ecall(&mut reference, &mut mem2), 200);
    assert_eq!(cached.stats, reference.stats, "cycle accounting diverged");
    assert_eq!(cached.hart.xregs(), reference.hart.xregs());
}

/// A 4-byte instruction whose upper parcel lives in an *adjacent* executable
/// region is never cached: a block's fingerprint only covers the region
/// holding its start pc, so patching the neighbour region would not
/// invalidate it. The straddling instruction must execute uncached and
/// therefore observe the patch immediately.
#[test]
fn straddling_instruction_across_regions_is_never_stale() {
    let straddler_old = encode(&addi(XReg::A0, XReg::A0, 1)).unwrap();
    let straddler_new = encode(&addi(XReg::A0, XReg::A0, 100)).unwrap();
    assert_eq!(
        straddler_old & 0xffff,
        straddler_new & 0xffff,
        "test needs the rewrite to live entirely in the upper parcel"
    );

    // Lower region: a whole instruction, then the straddler's low parcel.
    let mut lo_region = words(&[addi(XReg::A0, XReg::ZERO, 7)]);
    lo_region.extend_from_slice(&(straddler_old as u16).to_le_bytes());
    // Adjacent upper region: the straddler's high parcel, then ecall.
    let mut hi_region = ((straddler_old >> 16) as u16).to_le_bytes().to_vec();
    hi_region.extend_from_slice(&words(&[Inst::Ecall]));
    let hi_start = BASE + lo_region.len() as u64;

    for cached in [true, false] {
        let mut cpu = if cached {
            Cpu::new(ExtSet::RV64GC)
        } else {
            Cpu::new_uncached(ExtSet::RV64GC)
        };
        let mut mem = Memory::new();
        mem.map_bytes(BASE, lo_region.clone(), Perms::RX, ".text.lo");
        mem.map_bytes(hi_start, hi_region.clone(), Perms::RX, ".text.hi");

        assert_eq!(run_to_ecall(&mut cpu, &mut mem), 8, "cached={cached}");
        // Patch only the upper region: its generation moves, the lower
        // region's does not. A block that cached the straddler under the
        // lower region's fingerprint would dodge this invalidation.
        mem.poke_code(hi_start, &((straddler_new >> 16) as u16).to_le_bytes())
            .unwrap();
        cpu.hart.set_x(XReg::A0, 0);
        assert_eq!(
            run_to_ecall(&mut cpu, &mut mem),
            107,
            "cached={cached}: stale straddling decode executed"
        );
    }
}

/// Patching one executable region must not evict blocks cached from a
/// *different* executable region: validation is purely per-region
/// fingerprints (`(region start, generation)`), with no global-generation
/// guard. Blocks in the untouched region keep serving re-entries with no
/// new invalidations or rebuilds.
#[test]
fn cross_region_blocks_survive_poke_elsewhere() {
    let hot_base = BASE;
    let cold_base = 0x4_0000;
    // Hot region: a straight-line block ending in ecall, re-entered often.
    let hot = words(&[addi(XReg::A0, XReg::A0, 3), Inst::Ecall]);
    // Cold region: executable bytes the kernel keeps patching.
    let cold = words(&[addi(XReg::A1, XReg::ZERO, 1), Inst::Ecall]);

    let mut cpu = Cpu::new(ExtSet::RV64GC);
    let mut mem = Memory::new();
    mem.map_bytes(hot_base, hot, Perms::RX, ".text.hot");
    mem.map_bytes(cold_base, cold, Perms::RX, ".text.cold");

    // Warm the hot block into the cache.
    assert_eq!(run_to_ecall(&mut cpu, &mut mem), 3);
    let warm = cpu.cache.stats;

    // Ten kernel patches to the cold region, each followed by a hot-region
    // re-entry. A global-generation guard would flush (or at least
    // re-validate-to-miss) the hot block every time.
    for i in 0..10u64 {
        mem.poke_code(cold_base, &words(&[addi(XReg::A1, XReg::ZERO, 1)]))
            .unwrap();
        cpu.hart.set_x(XReg::A0, 0);
        assert_eq!(run_to_ecall(&mut cpu, &mut mem), 3, "patch round {i}");
    }

    let s = cpu.cache.stats;
    assert_eq!(
        s.invalidations, warm.invalidations,
        "patches elsewhere must not invalidate this region's blocks: {s:?}"
    );
    assert_eq!(
        s.blocks_built, warm.blocks_built,
        "the hot block must never be rebuilt: {s:?}"
    );
    assert_eq!(s.misses, warm.misses, "re-entries must not miss: {s:?}");
    assert!(
        s.hits + s.chained >= warm.hits + warm.chained + 10,
        "every re-entry must be served from the cache: {s:?}"
    );
}

/// A store to a *different* (non-executable) region must not invalidate
/// anything — generations only move for executable mappings.
#[test]
fn data_stores_do_not_invalidate() {
    let prog = words(&[
        Inst::Store {
            kind: StoreKind::Sd,
            rs1: XReg::T0,
            rs2: XReg::A0,
            offset: 0,
        },
        addi(XReg::A0, XReg::A0, 5),
        Inst::Ecall,
    ]);
    let mut cpu = Cpu::new(ExtSet::RV64GC);
    let mut mem = Memory::new();
    mem.map_bytes(BASE, prog, Perms::RX, ".text");
    mem.map_bytes(0x2_0000, vec![0; 64], Perms::RW, ".data");
    cpu.hart.set_x(XReg::T0, 0x2_0000);

    assert_eq!(run_to_ecall(&mut cpu, &mut mem), 5);
    cpu.hart.set_x(XReg::A0, 0);
    assert_eq!(run_to_ecall(&mut cpu, &mut mem), 5);
    let s = cpu.cache.stats;
    assert_eq!(s.invalidations, 0, "{s:?}");
    assert!(s.hits >= 1, "second run must reuse the block: {s:?}");
}

/// Unmap-then-remap at the same address severs *everything* decoded under
/// the old region: cached blocks AND the chain links between them. A hot
/// loop is chained block-to-block; after the region is unmapped and new
/// code mapped at the same base, neither a stale block nor a stale chain
/// link may fire — the workspace-unique region generations guarantee the
/// remapped region can never reproduce a fingerprint the old links were
/// validated against.
#[test]
fn unmap_then_remap_severs_blocks_and_chain_links() {
    // Two-block loop so chain links form between them.
    let loop_of = |step: i32| {
        words(&[
            addi(XReg::T0, XReg::ZERO, 50),
            addi(XReg::A0, XReg::ZERO, 0),
            addi(XReg::A0, XReg::A0, step), // loop:
            Inst::Branch {
                kind: BranchKind::Beq,
                rs1: XReg::ZERO,
                rs2: XReg::ZERO,
                offset: 4, // Split the loop body into two blocks.
            },
            addi(XReg::T0, XReg::T0, -1),
            Inst::Branch {
                kind: BranchKind::Bne,
                rs1: XReg::T0,
                rs2: XReg::ZERO,
                offset: -12,
            },
            Inst::Ecall,
        ])
    };
    let mut cpu = Cpu::new(ExtSet::RV64GC);
    let mut mem = Memory::new();
    mem.map_bytes(BASE, loop_of(2), Perms::RX, "gen1");
    let gen1 = mem.region("gen1").unwrap().generation;
    assert_eq!(run_to_ecall(&mut cpu, &mut mem), 100);
    let warm = cpu.cache.stats;
    assert!(
        warm.chained > 0,
        "hot loop must run on chain links: {warm:?}"
    );

    assert!(mem.unmap("gen1"));
    mem.map_bytes(BASE, loop_of(3), Perms::RX, "gen2");
    let gen2 = mem.region("gen2").unwrap().generation;
    assert!(
        gen2 > gen1,
        "remap at the same address must draw a fresh workspace-unique generation"
    );

    // Every stale block (and every chain link validated under gen1) must
    // be dropped: the run executes the new bytes only.
    assert_eq!(
        run_to_ecall(&mut cpu, &mut mem),
        150,
        "stale blocks or chain links from the unmapped region survived the remap"
    );
    let s = cpu.cache.stats;
    assert!(
        s.invalidations > warm.invalidations,
        "remap must invalidate the cached blocks: {s:?}"
    );
    assert!(
        s.blocks_built > warm.blocks_built,
        "the new code must be decoded fresh: {s:?}"
    );

    // And the dirty-region channel reports both the unmap and the remap.
    let spans = mem.dirty_regions_since(gen1);
    assert!(
        spans
            .iter()
            .any(|d| d.start == BASE && d.generation >= gen2),
        "unmap/remap must be visible to incremental re-rewriting: {spans:?}"
    );
}

// ---- JIT-tier SMC regressions ---------------------------------------
//
// The JIT inherits the cache's invalidation contract through the same
// `(region start, generation)` fingerprints: a poke severs the resident
// trace before it can run again, re-promotion of identical guest bytes
// compiles bit-identical host code, and blocks the cache itself refuses
// (cross-region straddlers) never reach the JIT at all. Each test
// returns early on hosts without executable pages, where the Jit mode
// legitimately runs with engine semantics.

/// `poke_code` severs the resident compiled trace: the next run executes
/// the NEW bytes through the engine, and the pc re-promotes only after
/// re-proving itself hot.
#[test]
fn poke_code_severs_jit_trace() {
    if !chimera_emu::jit_available() {
        eprintln!("skipping: no executable pages on this host");
        return;
    }
    let mut cpu = Cpu::new(ExtSet::RV64GC);
    cpu.set_mode(chimera_emu::ExecMode::Jit);
    cpu.set_jit_threshold(1);
    let mut mem = Memory::new();
    mem.map_bytes(
        BASE,
        words(&[addi(XReg::A0, XReg::ZERO, 11), Inst::Ecall]),
        Perms::RX,
        ".text",
    );

    assert_eq!(run_to_ecall(&mut cpu, &mut mem), 11);
    assert_eq!(cpu.jit_compiled(), 1, "threshold 1 promotes immediately");
    assert!(cpu.cache.stats.jit_execs >= 1, "{:?}", cpu.cache.stats);
    assert!(cpu.jit_trace_bytes(BASE).is_some(), "trace is resident");

    mem.poke_code(BASE, &words(&[addi(XReg::A0, XReg::ZERO, 22)]))
        .unwrap();

    // A stale trace would yield 11.
    assert_eq!(run_to_ecall(&mut cpu, &mut mem), 22);
    assert!(
        cpu.jit_trace_bytes(BASE).is_none(),
        "the poked trace must be severed, not re-entered"
    );

    // The pc re-promotes once it re-proves itself hot (the sever doubled
    // its threshold), and keeps executing the new bytes.
    for _ in 0..4 {
        assert_eq!(run_to_ecall(&mut cpu, &mut mem), 22);
    }
    assert!(cpu.jit_compiled() >= 2, "re-promotion must happen");
    assert!(cpu.jit_trace_bytes(BASE).is_some());
}

/// Re-promoting the *same guest bytes* at the same pc after an SMC round
/// trip compiles bit-identical host code — compilation is a pure
/// function of the lowered block.
#[test]
fn repromotion_after_smc_is_byte_identical() {
    if !chimera_emu::jit_available() {
        eprintln!("skipping: no executable pages on this host");
        return;
    }
    let v1 = words(&[addi(XReg::A0, XReg::ZERO, 11), Inst::Ecall]);
    let v2 = words(&[addi(XReg::A0, XReg::ZERO, 22), Inst::Ecall]);

    let mut cpu = Cpu::new(ExtSet::RV64GC);
    cpu.set_mode(chimera_emu::ExecMode::Jit);
    cpu.set_jit_threshold(1);
    let mut mem = Memory::new();
    mem.map_bytes(BASE, v1.clone(), Perms::RX, ".text");

    assert_eq!(run_to_ecall(&mut cpu, &mut mem), 11);
    let first = cpu.jit_trace_bytes(BASE).expect("v1 promoted");

    // SMC to v2 and back to v1, driving enough re-entries after each poke
    // to clear the sever-escalated threshold.
    mem.poke_code(BASE, &v2).unwrap();
    for _ in 0..8 {
        assert_eq!(run_to_ecall(&mut cpu, &mut mem), 22);
    }
    let second = cpu.jit_trace_bytes(BASE).expect("v2 promoted");
    assert_ne!(first, second, "different guest bytes, different trace");

    mem.poke_code(BASE, &v1).unwrap();
    for _ in 0..16 {
        assert_eq!(run_to_ecall(&mut cpu, &mut mem), 11);
    }
    let third = cpu.jit_trace_bytes(BASE).expect("v1 re-promoted");
    assert_eq!(
        first, third,
        "re-promoting identical guest bytes must compile identical host code"
    );
}

/// The straddler regression in Jit mode: an instruction whose upper
/// parcel lives in an adjacent region is never cached, so it can never be
/// compiled into a trace either — patching the neighbour region takes
/// effect immediately, and the run stays bit-identical to the uncached
/// reference.
#[test]
fn straddling_instruction_demotes_from_jit() {
    let straddler_old = encode(&addi(XReg::A0, XReg::A0, 1)).unwrap();
    let straddler_new = encode(&addi(XReg::A0, XReg::A0, 100)).unwrap();
    let mut lo_region = words(&[addi(XReg::A0, XReg::ZERO, 7)]);
    lo_region.extend_from_slice(&(straddler_old as u16).to_le_bytes());
    let mut hi_region = ((straddler_old >> 16) as u16).to_le_bytes().to_vec();
    hi_region.extend_from_slice(&words(&[Inst::Ecall]));
    let hi_start = BASE + lo_region.len() as u64;

    let mut results = Vec::new();
    for jit in [true, false] {
        let mut cpu = if jit {
            let mut c = Cpu::new(ExtSet::RV64GC);
            c.set_mode(chimera_emu::ExecMode::Jit);
            c.set_jit_threshold(1);
            c
        } else {
            Cpu::new_uncached(ExtSet::RV64GC)
        };
        let mut mem = Memory::new();
        mem.map_bytes(BASE, lo_region.clone(), Perms::RX, ".text.lo");
        mem.map_bytes(hi_start, hi_region.clone(), Perms::RX, ".text.hi");

        assert_eq!(run_to_ecall(&mut cpu, &mut mem), 8, "jit={jit}");
        if jit {
            // The leading block (truncated before the straddler) may
            // compile, but the straddling instruction itself must never
            // enter a trace — it has no single-region fingerprint.
            assert!(
                cpu.jit_trace_bytes(BASE + 4).is_none(),
                "a straddling block must never be promoted"
            );
        }
        // Patch only the upper region; a trace fingerprinted on the lower
        // region alone would dodge this invalidation.
        mem.poke_code(hi_start, &((straddler_new >> 16) as u16).to_le_bytes())
            .unwrap();
        cpu.hart.set_x(XReg::A0, 0);
        assert_eq!(
            run_to_ecall(&mut cpu, &mut mem),
            107,
            "jit={jit}: stale straddling decode executed"
        );
        results.push((cpu.hart.xregs(), cpu.stats));
    }
    assert_eq!(results[0], results[1], "jit tier must be transparent");
}
