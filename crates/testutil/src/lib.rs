//! # chimera-testutil
//!
//! Shared execution/byte-equality helpers for the differential test
//! suites and the fuzzing oracles.
//!
//! Before this crate, `tests/differential.rs`,
//! `crates/rewrite/tests/incremental_rewrite.rs` and
//! `crates/rewrite/tests/parallel_determinism.rs` each carried their own
//! copy of "run this binary and capture everything comparable": the final
//! [`RunResult`], the bytes of every writable section, kernel-mediated
//! runs of rewritten variants, and the engine roster of the §6.1
//! comparison. The copies had started to drift (different return shapes,
//! different fuel constants), which is exactly how a transparency bug
//! slips past one suite while another would have caught it. Everything
//! comparable now lives here, and the fuzzing crate's oracles assert over
//! the *same* observations the curated suites pin.
//!
//! Nothing here asserts by itself (except the `run_*` helpers panicking
//! on outcomes the caller declared impossible): helpers *capture*
//! observations; suites compare them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use chimera_emu::{BareRun, BareYield, Cpu, ExecMode, Memory, RunError, RunResult};
use chimera_isa::prng::Prng;
use chimera_isa::ExtSet;
use chimera_kernel::{
    KernelRunner, ManyHartConfig, ManyHartKernel, ManyHartResult, Process, RunOutcome,
    RuntimeTables, Tracer, Variant,
};
use chimera_obj::Binary;
use chimera_rewrite::{
    chbp_rewrite, ebreak_patch, ChbpEngine, Flavor, IdentityEngine, Mode, RegenEngine,
    RewriteEngine, RewriteOptions, Rewritten,
};
use chimera_workloads::hetero;
use std::collections::BTreeMap;

/// The default fuel budget for runs that must finish: effectively
/// unbounded, while still letting a runaway loop terminate the test run
/// (`u64::MAX` itself would mask fuel-accounting overflow bugs).
pub const FUEL: u64 = u64::MAX / 2;

/// Final bytes of every writable section the binary declares (the output
/// state a program leaves behind), read from the run's memory.
pub fn writable_bytes(mem: &mut Memory, bin: &Binary) -> Vec<(String, Vec<u8>)> {
    bin.sections
        .iter()
        .filter(|s| s.perms.w)
        .map(|s| {
            let bytes = mem
                .peek(s.addr, s.data.len())
                .unwrap_or_else(|| panic!("section {} vanished", s.name));
            (s.name.clone(), bytes)
        })
        .collect()
}

/// Runs `bin` keeping the final memory, so callers can compare
/// data-section bytes in addition to the [`RunResult`].
pub fn run_keeping_mem(
    bin: &Binary,
    profile: ExtSet,
    cache: bool,
) -> (Result<RunResult, RunError>, Memory) {
    let (mut cpu, mut mem) = chimera_emu::boot(bin, profile);
    cpu.cache.enabled = cache;
    let r = chimera_emu::run_cpu(&mut cpu, &mut mem, FUEL);
    (r, mem)
}

/// Everything observable about one execution configuration of one
/// program — the unit of comparison for differential suites and the
/// fuzzing oracles. Two configurations agree iff their `Obs` are equal
/// (cache statistics excluded: those follow the reconciliation laws the
/// suites assert separately).
///
/// `xregs` and `stats` are captured from the CPU itself, not the
/// [`RunResult`], so trapping runs are compared on full architectural
/// state too — a divergence hidden behind an identical trap enum still
/// fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Obs {
    /// The run's result (or its error — traps must be identical too).
    pub result: Result<RunResult, RunError>,
    /// Final integer register file (valid even when the run trapped).
    pub xregs: [u64; 32],
    /// Final execution statistics (valid even when the run trapped).
    pub stats: chimera_emu::ExecStats,
    /// Final program counter.
    pub pc: u64,
    /// Final bytes of every writable section.
    pub mem: Vec<(String, Vec<u8>)>,
}

/// Runs `bin` under an explicit [`ExecMode`] and cache switch, capturing
/// the comparable observation plus the cache counters.
pub fn observe_mode(
    bin: &Binary,
    profile: ExtSet,
    mode: ExecMode,
    cache: bool,
    fuel: u64,
) -> (Obs, chimera_emu::CacheStats) {
    observe_mode_traced(
        bin,
        profile,
        mode,
        cache,
        fuel,
        &chimera_trace::Tracer::disabled(),
    )
}

/// [`observe_mode`] with an explicit tracer attached to the CPU (for
/// trace-transparency comparisons).
pub fn observe_mode_traced(
    bin: &Binary,
    profile: ExtSet,
    mode: ExecMode,
    cache: bool,
    fuel: u64,
    tracer: &chimera_trace::Tracer,
) -> (Obs, chimera_emu::CacheStats) {
    let (mut cpu, mut mem) = chimera_emu::boot(bin, profile);
    cpu.set_mode(mode);
    cpu.cache.enabled = cache;
    cpu.tracer = tracer.clone();
    let result = chimera_emu::run_cpu(&mut cpu, &mut mem, fuel);
    let mem_bytes = writable_bytes(&mut mem, bin);
    (
        Obs {
            result,
            xregs: cpu.hart.xregs(),
            stats: cpu.stats,
            pc: cpu.hart.pc,
            mem: mem_bytes,
        },
        cpu.cache.stats,
    )
}

/// Observations of every [`ExecMode`] for one binary — the full
/// differential matrix in a single call, in tier order: reference
/// interpreter, decode-cached interpreter, micro-op engine, JIT.
///
/// The JIT run uses a promotion threshold of 1 so every re-entered block
/// compiles (the matrix exists to exercise JIT coverage; the tiering
/// policy has its own unit tests). On hosts without executable pages the
/// `jit` column still runs — it degrades to the engine's semantics, so
/// equality assertions stay valid and merely become vacuous as *JIT*
/// coverage (see [`chimera_emu::jit_available`]).
#[derive(Debug, Clone)]
pub struct ModeMatrix {
    /// Pure fetch/decode/execute (its cache counters must stay zero —
    /// suites assert that, so it is captured too).
    pub reference: (Obs, chimera_emu::CacheStats),
    /// Decode-cached interpreter and its cache counters.
    pub interpreter: (Obs, chimera_emu::CacheStats),
    /// Micro-op engine and its cache counters.
    pub engine: (Obs, chimera_emu::CacheStats),
    /// JIT tier and its cache counters.
    pub jit: (Obs, chimera_emu::CacheStats),
}

impl ModeMatrix {
    /// The four observations with their mode names, for uniform
    /// "all modes agree" comparisons.
    pub fn columns(&self) -> [(&'static str, &Obs); 4] {
        [
            ("reference", &self.reference.0),
            ("interpreter", &self.interpreter.0),
            ("engine", &self.engine.0),
            ("jit", &self.jit.0),
        ]
    }
}

/// Runs `bin` in [`ExecMode::Jit`] with an explicit promotion threshold
/// and captures the observation plus cache counters. Suites usually pass
/// threshold 1 (compile every re-entered block) so the comparison
/// actually exercises compiled code.
pub fn observe_jit(
    bin: &Binary,
    profile: ExtSet,
    fuel: u64,
    threshold: u32,
) -> (Obs, chimera_emu::CacheStats) {
    let (mut cpu, mut mem) = chimera_emu::boot(bin, profile);
    cpu.set_mode(ExecMode::Jit);
    cpu.set_jit_threshold(threshold);
    let result = chimera_emu::run_cpu(&mut cpu, &mut mem, fuel);
    let mem_bytes = writable_bytes(&mut mem, bin);
    (
        Obs {
            result,
            xregs: cpu.hart.xregs(),
            stats: cpu.stats,
            pc: cpu.hart.pc,
            mem: mem_bytes,
        },
        cpu.cache.stats,
    )
}

/// Runs `bin` once per [`ExecMode`] and captures each observation — the
/// standard way for a suite to assert four-way transparency.
pub fn run_all_modes(bin: &Binary, profile: ExtSet, fuel: u64) -> ModeMatrix {
    ModeMatrix {
        reference: observe_mode(bin, profile, ExecMode::Reference, false, fuel),
        interpreter: observe_mode(bin, profile, ExecMode::Interpreter, true, fuel),
        engine: observe_mode(bin, profile, ExecMode::Engine, true, fuel),
        jit: observe_jit(bin, profile, fuel, 1),
    }
}

/// A completed kernel-supervised run of one binary variant.
pub struct KernelRun {
    /// The code passed to `exit`.
    pub exit_code: i64,
    /// Bytes the task wrote to stdout through the kernel.
    pub stdout: Vec<u8>,
    /// The CPU after the run (stats, registers, cache counters).
    pub cpu: Cpu,
    /// The kernel runner (fault counters, tables).
    pub kernel: KernelRunner,
    /// The final memory.
    pub mem: Memory,
}

/// Runs `binary` on `profile` under the simulated kernel (normal flow may
/// route through SMILE trampolines, trap trampolines, Safer corrections
/// and lazy rewrites — the passive handler resolves them all), panicking
/// unless the task exits. `cache` switches the decode cache.
pub fn run_under_kernel(
    binary: Binary,
    tables: RuntimeTables,
    profile: ExtSet,
    cache: bool,
) -> KernelRun {
    let process = Process::new(vec![Variant { binary, tables }]);
    let (mut cpu, mut mem, view) = process.load(profile).expect("view loads");
    cpu.cache.enabled = cache;
    let mut k = KernelRunner::new(view.tables.clone());
    match k.run(&mut cpu, &mut mem, FUEL) {
        RunOutcome::Exited(exit_code) => KernelRun {
            exit_code,
            stdout: k.stdout.clone(),
            cpu,
            kernel: k,
            mem,
        },
        other => panic!("kernel run (cache={cache}) ended with {other:?}"),
    }
}

/// A kernel-supervised run that is allowed to end any way — the
/// non-panicking sibling of [`KernelRun`] for oracles that compare
/// *outcomes* (including traps and fuel exhaustion) rather than assume a
/// clean exit.
pub struct KernelObs {
    /// How the run stopped.
    pub outcome: RunOutcome,
    /// Bytes the task wrote to stdout through the kernel.
    pub stdout: Vec<u8>,
    /// The CPU after the run (stats, registers, cache counters).
    pub cpu: Cpu,
    /// The kernel runner (fault counters, tables).
    pub kernel: KernelRunner,
    /// The final memory.
    pub mem: Memory,
}

/// Like [`run_under_kernel`], but never panics, takes an explicit fuel
/// budget, and optionally overrides the entry pc (the misaligned-entry
/// fuzzing hook: forcing execution into the middle of a SMILE
/// trampoline).
pub fn run_under_kernel_at(
    binary: Binary,
    tables: RuntimeTables,
    profile: ExtSet,
    cache: bool,
    entry: Option<u64>,
    fuel: u64,
) -> KernelObs {
    let process = Process::new(vec![Variant { binary, tables }]);
    let (mut cpu, mut mem, view) = process.load(profile).expect("view loads");
    cpu.cache.enabled = cache;
    if let Some(pc) = entry {
        cpu.hart.pc = pc;
    }
    let mut k = KernelRunner::new(view.tables.clone());
    let outcome = k.run(&mut cpu, &mut mem, fuel);
    KernelObs {
        outcome,
        stdout: k.stdout.clone(),
        cpu,
        kernel: k,
        mem,
    }
}

/// Runs a CHBP-style [`Rewritten`] (patched binary + fault table) on the
/// base profile under the kernel.
pub fn run_rewritten(rw: &Rewritten, cache: bool) -> KernelRun {
    run_under_kernel(
        rw.binary.clone(),
        RuntimeTables {
            fht: Some(rw.fht.clone()),
            regen: None,
        },
        ExtSet::RV64GC,
        cache,
    )
}

/// Native reference behaviour: the original binary run to completion on
/// the extension profile. Panics if it does not exit cleanly.
pub fn native_reference(bin: &Binary) -> (i64, Vec<u8>) {
    let r = chimera_emu::run_binary_on(bin, ExtSet::RV64GCV, FUEL).expect("native run exits");
    (r.exit_code, r.stdout)
}

/// The engine roster of the §6.1 system comparison, one per
/// `SystemKind`: CHBP (Chimera), the §6.2 trap-entry strawman, the Safer
/// and ARMore regeneration baselines, and the FAM/MELF identity engine.
pub fn engines() -> Vec<(&'static str, Box<dyn RewriteEngine>)> {
    vec![
        (
            "chbp",
            Box::new(ChbpEngine {
                target: ExtSet::RV64GC,
                opts: RewriteOptions::default(),
            }) as Box<dyn RewriteEngine>,
        ),
        (
            "strawman",
            Box::new(ChbpEngine {
                target: ExtSet::RV64GC,
                opts: RewriteOptions {
                    force_trap_entries: true,
                    ..Default::default()
                },
            }),
        ),
        (
            "safer",
            Box::new(RegenEngine {
                target: ExtSet::RV64GC,
                mode: Mode::Downgrade,
                flavor: Flavor::Safer,
            }),
        ),
        (
            "armore",
            Box::new(RegenEngine {
                target: ExtSet::RV64GC,
                mode: Mode::Downgrade,
                flavor: Flavor::Armore,
            }),
        ),
        ("identity", Box::new(IdentityEngine)),
    ]
}

/// Loads a rewritten image into a bare memory (the runtime mutation
/// surface) and returns it with the `.text` range, where mutations can
/// invalidate rewrite units.
pub fn load_image(out: &Binary) -> (Memory, u64, u64) {
    let mut mem = Memory::new();
    for s in &out.sections {
        mem.map_bytes(s.addr, s.data.clone(), s.perms, &s.name);
    }
    let text = out.section(".text").expect("rewritten keeps .text");
    (mem, text.addr, text.end())
}

/// Applies one random runtime code mutation to `mem` — the three kinds
/// the kernel's real paths produce: a guest SMC poke, a lazy-rewrite
/// `ebreak` patch, and an MMView-style unmap/remap cycle.
pub fn mutate_image(mem: &mut Memory, rng: &mut Prng, text_start: u64, text_end: u64) {
    match rng.below(3) {
        // Guest self-modification: an arbitrary small poke.
        0 => {
            let addr = text_start + rng.below((text_end - text_start - 8) / 2) * 2;
            let len = 2 + 2 * rng.below(4) as usize;
            let bytes: Vec<u8> = (0..len)
                .map(|i| (rng.next_u64() >> (i % 8)) as u8)
                .collect();
            mem.poke_code(addr, &bytes).expect("poke inside .text");
        }
        // A lazy-rewrite-style patch: the kernel overwrites a site with
        // an `ebreak` trampoline.
        1 => {
            let addr = text_start + rng.below((text_end - text_start - 8) / 4) * 4;
            mem.poke_code(addr, &ebreak_patch(4)).expect("ebreak patch");
        }
        // An MMView-style remap: unmap the code region and map the same
        // bytes back at the same address (generations must not repeat).
        _ => {
            let r = mem.region(".text").expect(".text is mapped").clone();
            assert!(mem.unmap(".text"), "unmap succeeds");
            mem.map_bytes(r.start, r.bytes().to_vec(), r.perms, ".text");
        }
    }
}

/// [`observe_mode`], but executed as a suspended/resumed fiber: the run
/// is chopped into `slice`-instruction fuel slices and, every
/// `hop_every`-th slice, the whole suspended run — CPU, memory, output
/// buffer — is moved into a **fresh OS thread** and resumed there. This
/// is the forced-migration torture test of the yield-point contract: any
/// slicing of a run, down to one instruction per slice across host
/// threads, must observe exactly like one unsliced [`observe_mode`] call
/// (the differential suite asserts it for all four execution modes).
///
/// `hop_every == 0` disables hopping (pure slicing on the calling
/// thread). In [`ExecMode::Jit`] the promotion threshold is pinned to 1,
/// matching [`observe_jit`]'s column in [`run_all_modes`].
pub fn observe_mode_sliced(
    bin: &Binary,
    profile: ExtSet,
    mode: ExecMode,
    cache: bool,
    fuel: u64,
    slice: u64,
    hop_every: u64,
) -> Obs {
    assert!(slice > 0, "a zero-instruction slice cannot make progress");
    let (mut cpu, mut mem) = chimera_emu::boot(bin, profile);
    cpu.set_mode(mode);
    if mode == ExecMode::Jit {
        cpu.set_jit_threshold(1);
    }
    cpu.cache.enabled = cache;
    let mut run = BareRun::new();
    let mut slices = 0u64;
    let result = loop {
        let used = cpu.stats.instret;
        if used >= fuel {
            break Err(RunError::OutOfFuel);
        }
        let budget = slice.min(fuel - used);
        slices += 1;
        let yielded = if hop_every > 0 && slices.is_multiple_of(hop_every) {
            // Forced migration: hand the suspended triple to a brand-new
            // OS thread, resume one slice there, and take it back.
            let (c, m, r, y) = {
                let (mut c, mut m, mut r) = (cpu, mem, run);
                std::thread::spawn(move || {
                    let y = r.resume(&mut c, &mut m, budget);
                    (c, m, r, y)
                })
                .join()
                .expect("migration thread survives")
            };
            cpu = c;
            mem = m;
            run = r;
            y
        } else {
            run.resume(&mut cpu, &mut mem, budget)
        };
        match yielded {
            BareYield::Exited(res) => break Ok(*res),
            BareYield::SliceExhausted => {}
            BareYield::Failed(err) => break Err(err),
        }
    };
    let mem_bytes = writable_bytes(&mut mem, bin);
    Obs {
        result,
        xregs: cpu.hart.xregs(),
        stats: cpu.stats,
        pc: cpu.hart.pc,
        mem: mem_bytes,
    }
}

/// The binaries of the standard heterogeneous many-hart scenario,
/// assembled (and CHBP-rewritten) once so 256-hart runs don't pay the
/// pipeline per hart.
pub struct ManyHartScenario {
    /// RVV matrix task (also booted profile-less for the FAM harts).
    pub matrix_ext: Binary,
    /// The same matrix task CHBP-rewritten to the base profile (SMILE
    /// trampolines: gp-mediated jumps through the data segment).
    pub matrix_chbp: Rewritten,
    /// The same matrix task rewritten with forced trap entries (the §6.2
    /// strawman): every trampoline entry is an `ebreak` round trip
    /// through the kernel's passive handler.
    pub matrix_trap: Rewritten,
    /// Scalar Fibonacci task.
    pub fib: Binary,
    /// IPI/WFI communicator task (peer mask 4).
    pub comm: Binary,
}

impl Default for ManyHartScenario {
    fn default() -> Self {
        ManyHartScenario::new()
    }
}

impl ManyHartScenario {
    /// Builds the scenario binaries (sizes kept small: the gate runs it
    /// at 64 and 256 harts × four worker counts).
    pub fn new() -> ManyHartScenario {
        let matrix_ext = hetero::matrix_task(16, 2, true);
        let matrix_chbp = chbp_rewrite(&matrix_ext, ExtSet::RV64GC, RewriteOptions::default())
            .expect("matrix task rewrites");
        let matrix_trap = chbp_rewrite(
            &matrix_ext,
            ExtSet::RV64GC,
            RewriteOptions {
                force_trap_entries: true,
                ..Default::default()
            },
        )
        .expect("matrix task rewrites (strawman)");
        ManyHartScenario {
            matrix_ext,
            matrix_chbp,
            matrix_trap,
            fib: hetero::fib_task(300, 2),
            comm: hetero::communicator_task(3, 4),
        }
    }

    /// Adds hart `id`'s task to `kernel` per the standard mix:
    ///
    /// * `id % 4 == 0` — RVV matrix task, native on an extension hart;
    /// * `id % 4 == 1` — the same RVV binary booted on a base hart with
    ///   no tables: its first vector instruction FAM-faults and the hart
    ///   migrates to the extension profile mid-run;
    /// * `id % 8 == 2` — the scalar Fibonacci task;
    /// * `id % 16 == 6` — the trap-entry strawman rewrite of the matrix
    ///   task: every trampoline entry is an `ebreak` round trip through
    ///   the kernel's passive handler, under fuel slicing;
    /// * `id % 16 == 14` — the CHBP/SMILE rewrite of the matrix task on
    ///   the base profile (gp-mediated trampolines through the data
    ///   segment);
    /// * `id % 4 == 3` — the communicator: pairs `(id, id ^ 4)` exchange
    ///   IPIs through the event queue and block in `wfi`.
    pub fn add_hart(&self, kernel: &mut ManyHartKernel, id: u64) {
        match id % 8 {
            0 | 4 => kernel.add_hart(
                &self.matrix_ext,
                ExtSet::RV64GCV,
                ExtSet::RV64GCV,
                RuntimeTables::default(),
            ),
            1 | 5 => kernel.add_hart(
                &self.matrix_ext,
                ExtSet::RV64GC,
                ExtSet::RV64GCV,
                RuntimeTables::default(),
            ),
            2 => kernel.add_hart(
                &self.fib,
                ExtSet::RV64GC,
                ExtSet::RV64GC,
                RuntimeTables::default(),
            ),
            6 => {
                let rw = if id % 16 == 6 {
                    &self.matrix_trap
                } else {
                    &self.matrix_chbp
                };
                kernel.add_hart(
                    &rw.binary,
                    ExtSet::RV64GC,
                    ExtSet::RV64GC,
                    RuntimeTables {
                        fht: Some(rw.fht.clone()),
                        regen: None,
                    },
                )
            }
            _ => kernel.add_hart(
                &self.comm,
                ExtSet::RV64GC,
                ExtSet::RV64GC,
                RuntimeTables::default(),
            ),
        };
    }

    /// Populates a kernel with `n` harts (`n % 8 == 0`, so every
    /// communicator's `id ^ 4` peer exists and is also a communicator).
    pub fn populate(&self, kernel: &mut ManyHartKernel, n: usize) {
        assert_eq!(n % 8, 0, "communicator pairs need n % 8 == 0");
        for id in 0..n as u64 {
            self.add_hart(kernel, id);
        }
    }
}

/// Runs the standard heterogeneous scenario — `n` harts over `workers`
/// logical host workers — and returns the result together with the
/// tracer's counter snapshot, so gates can reconcile the result's
/// aggregate fields (`migrations`, `delivered`) against the `many.*`
/// trace counters.
pub fn run_many_hart_scenario(
    scenario: &ManyHartScenario,
    n: usize,
    workers: usize,
    quantum: u64,
) -> (ManyHartResult, BTreeMap<String, u64>) {
    let tracer = Tracer::enabled();
    let mut kernel = ManyHartKernel::with_tracer(
        ManyHartConfig {
            workers,
            quantum,
            ..Default::default()
        },
        tracer.clone(),
    );
    scenario.populate(&mut kernel, n);
    let result = kernel.run();
    let counters = tracer
        .metrics()
        .expect("enabled tracer has metrics")
        .counter_snapshot()
        .into_iter()
        .collect();
    (result, counters)
}

/// Converts the emulator's dirty-span report into the rewrite pipeline's
/// span type.
pub fn to_rewrite_spans(dirty: &[chimera_emu::DirtySpan]) -> Vec<chimera_rewrite::DirtySpan> {
    dirty
        .iter()
        .map(|d| chimera_rewrite::DirtySpan {
            start: d.start,
            end: d.end,
            generation: d.generation,
        })
        .collect()
}
