//! A programmatic module builder: append instructions, labels and data, then
//! lay out and encode a [`Binary`].
//!
//! The builder is the back end of the text assembler and the direct
//! interface used by the workload generators, which need to emit megabytes
//! of code without going through text. Label references are fixed up in a
//! second pass; every item has a fixed size at append time, so layout is
//! single-shot and deterministic.

use crate::binary::{Binary, Perms, Section, SymKind, Symbol, TEXT_BASE};
use chimera_isa::{encode, encode_compressed, BranchKind, Inst, OpImmKind, OpKind, XReg};
use std::collections::HashMap;
use std::fmt;

/// Errors from [`ModuleBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A referenced label was never defined.
    UndefinedLabel(String),
    /// A label was defined twice.
    DuplicateLabel(String),
    /// A branch/jump target is out of encoding range.
    TargetOutOfRange {
        /// The referenced label.
        label: String,
        /// The required byte offset.
        offset: i64,
    },
    /// Instruction encoding failed (immediate out of range).
    Encode(String),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UndefinedLabel(l) => write!(f, "undefined label {l}"),
            BuildError::DuplicateLabel(l) => write!(f, "duplicate label {l}"),
            BuildError::TargetOutOfRange { label, offset } => {
                write!(f, "target {label} out of range (offset {offset})")
            }
            BuildError::Encode(e) => write!(f, "encoding error: {e}"),
        }
    }
}

impl std::error::Error for BuildError {}

#[derive(Debug, Clone)]
enum TextItem {
    /// A 4-byte instruction.
    Inst(Inst),
    /// A 2-byte compressed instruction (compressibility checked at push).
    CInst(Inst),
    /// `jal rd, label` (4 bytes, ±1 MiB).
    JalTo { rd: XReg, label: String },
    /// Conditional branch to a label (4 bytes, ±4 KiB).
    BranchTo {
        kind: BranchKind,
        rs1: XReg,
        rs2: XReg,
        label: String,
    },
    /// `la rd, label`: pc-relative `auipc` + `addi` (8 bytes, ±2 GiB).
    La { rd: XReg, label: String },
    /// `call label`: `auipc ra` + `jalr ra` (8 bytes, ±2 GiB).
    Call { label: String },
    /// Raw bytes (tests, hand-crafted encodings).
    Raw(Vec<u8>),
}

impl TextItem {
    fn size(&self) -> u64 {
        match self {
            TextItem::Inst(_) => 4,
            TextItem::CInst(_) => 2,
            TextItem::JalTo { .. } | TextItem::BranchTo { .. } => 4,
            TextItem::La { .. } | TextItem::Call { .. } => 8,
            TextItem::Raw(b) => b.len() as u64,
        }
    }
}

#[derive(Debug, Clone)]
enum DataItem {
    Bytes(Vec<u8>),
    /// The absolute address of a label (8 bytes little-endian); this is how
    /// function-pointer tables and jump tables get code addresses into data.
    AddrOf(String),
    Zero(usize),
    Align(u64),
}

/// Which data section a data item belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataSec {
    /// Read-only data (`.rodata`).
    Ro,
    /// Read-write data (`.data`).
    Rw,
}

/// Builds a [`Binary`] from instructions, labels and data.
#[derive(Debug, Default)]
pub struct ModuleBuilder {
    text: Vec<(u64, TextItem)>,
    text_size: u64,
    rodata: Vec<DataItem>,
    data: Vec<DataItem>,
    /// label -> (space, offset); space 0 = text, 1 = rodata, 2 = data.
    labels: HashMap<String, (u8, u64)>,
    globals: Vec<String>,
    duplicate: Option<String>,
    /// Whether eligible instructions should be emitted compressed.
    pub compress: bool,
}

impl ModuleBuilder {
    /// Creates an empty builder. With `compress`, instructions that have an
    /// RVC form are emitted as 2-byte encodings (mirroring a `-C` compile).
    pub fn new(compress: bool) -> Self {
        ModuleBuilder {
            compress,
            ..Default::default()
        }
    }

    /// Current text offset (bytes from the start of `.text`).
    pub fn text_offset(&self) -> u64 {
        self.text_size
    }

    fn push_text(&mut self, item: TextItem) {
        let size = item.size();
        self.text.push((self.text_size, item));
        self.text_size += size;
    }

    /// Defines a label at the current text position.
    pub fn label(&mut self, name: &str) -> &mut Self {
        if self
            .labels
            .insert(name.to_string(), (0, self.text_size))
            .is_some()
        {
            self.duplicate.get_or_insert_with(|| name.to_string());
        }
        self
    }

    /// Marks a label as a global symbol (exported in the symbol table).
    pub fn global(&mut self, name: &str) -> &mut Self {
        self.globals.push(name.to_string());
        self
    }

    /// Appends one instruction (4-byte encoding, or 2-byte when the builder
    /// compresses and the instruction has an RVC form).
    pub fn inst(&mut self, i: Inst) -> &mut Self {
        if self.compress && encode_compressed(&i).is_some() {
            self.push_text(TextItem::CInst(i));
        } else {
            self.push_text(TextItem::Inst(i));
        }
        self
    }

    /// Appends one instruction, forcing the 4-byte encoding.
    pub fn inst4(&mut self, i: Inst) -> &mut Self {
        self.push_text(TextItem::Inst(i));
        self
    }

    /// Appends several instructions.
    pub fn insts(&mut self, is: impl IntoIterator<Item = Inst>) -> &mut Self {
        for i in is {
            self.inst(i);
        }
        self
    }

    /// Appends raw bytes into `.text` (hand-crafted encodings in tests).
    pub fn raw_text(&mut self, bytes: &[u8]) -> &mut Self {
        self.push_text(TextItem::Raw(bytes.to_vec()));
        self
    }

    /// `jal rd, label`.
    pub fn jal_to(&mut self, rd: XReg, label: &str) -> &mut Self {
        self.push_text(TextItem::JalTo {
            rd,
            label: label.to_string(),
        });
        self
    }

    /// `j label` (jump without link).
    pub fn jump(&mut self, label: &str) -> &mut Self {
        self.jal_to(XReg::ZERO, label)
    }

    /// Conditional branch to a label.
    pub fn branch_to(&mut self, kind: BranchKind, rs1: XReg, rs2: XReg, label: &str) -> &mut Self {
        self.push_text(TextItem::BranchTo {
            kind,
            rs1,
            rs2,
            label: label.to_string(),
        });
        self
    }

    /// `beqz rs, label`.
    pub fn beqz(&mut self, rs: XReg, label: &str) -> &mut Self {
        self.branch_to(BranchKind::Beq, rs, XReg::ZERO, label)
    }

    /// `bnez rs, label`.
    pub fn bnez(&mut self, rs: XReg, label: &str) -> &mut Self {
        self.branch_to(BranchKind::Bne, rs, XReg::ZERO, label)
    }

    /// `la rd, label` (pc-relative address materialization, 8 bytes).
    pub fn la(&mut self, rd: XReg, label: &str) -> &mut Self {
        self.push_text(TextItem::La {
            rd,
            label: label.to_string(),
        });
        self
    }

    /// `call label` (`auipc ra` + `jalr ra`, ±2 GiB reach, 8 bytes).
    pub fn call(&mut self, label: &str) -> &mut Self {
        self.push_text(TextItem::Call {
            label: label.to_string(),
        });
        self
    }

    /// `ret` (`jalr zero, 0(ra)`).
    pub fn ret(&mut self) -> &mut Self {
        self.inst(Inst::Jalr {
            rd: XReg::RA,
            rs1: XReg::RA,
            offset: 0,
        });
        // NOTE: `ret` must not link; re-emit correctly below.
        let last = self.text.len() - 1;
        let fixed = Inst::Jalr {
            rd: XReg::ZERO,
            rs1: XReg::RA,
            offset: 0,
        };
        self.text[last].1 = if self.compress && encode_compressed(&fixed).is_some() {
            TextItem::CInst(fixed)
        } else {
            TextItem::Inst(fixed)
        };
        self
    }

    /// Materializes a 64-bit constant into `rd` (the `li` pseudo).
    pub fn li(&mut self, rd: XReg, value: i64) -> &mut Self {
        for i in li_sequence(rd, value) {
            self.inst(i);
        }
        self
    }

    /// Defines a label at the current position of a data section.
    pub fn data_label(&mut self, sec: DataSec, name: &str) -> &mut Self {
        let (space, off) = match sec {
            DataSec::Ro => (1u8, data_size(&self.rodata)),
            DataSec::Rw => (2u8, data_size(&self.data)),
        };
        if self.labels.insert(name.to_string(), (space, off)).is_some() {
            self.duplicate.get_or_insert_with(|| name.to_string());
        }
        self
    }

    /// Appends raw bytes to a data section.
    pub fn data_bytes(&mut self, sec: DataSec, bytes: &[u8]) -> &mut Self {
        self.data_mut(sec).push(DataItem::Bytes(bytes.to_vec()));
        self
    }

    /// Appends a little-endian u64 to a data section.
    pub fn dword(&mut self, sec: DataSec, v: u64) -> &mut Self {
        self.data_bytes(sec, &v.to_le_bytes())
    }

    /// Appends a little-endian u32 to a data section.
    pub fn word(&mut self, sec: DataSec, v: u32) -> &mut Self {
        self.data_bytes(sec, &v.to_le_bytes())
    }

    /// Appends an f64 (its IEEE bits) to a data section.
    pub fn double(&mut self, sec: DataSec, v: f64) -> &mut Self {
        self.data_bytes(sec, &v.to_le_bytes())
    }

    /// Appends the absolute address of `label` (8 bytes); the builder
    /// resolves it during layout. This is how indirect-jump tables are
    /// built.
    pub fn addr_of(&mut self, sec: DataSec, label: &str) -> &mut Self {
        self.data_mut(sec).push(DataItem::AddrOf(label.to_string()));
        self
    }

    /// Appends `n` zero bytes.
    pub fn zero(&mut self, sec: DataSec, n: usize) -> &mut Self {
        self.data_mut(sec).push(DataItem::Zero(n));
        self
    }

    /// Aligns the data section to `align` bytes (power of two).
    pub fn align(&mut self, sec: DataSec, align: u64) -> &mut Self {
        self.data_mut(sec).push(DataItem::Align(align));
        self
    }

    fn data_mut(&mut self, sec: DataSec) -> &mut Vec<DataItem> {
        match sec {
            DataSec::Ro => &mut self.rodata,
            DataSec::Rw => &mut self.data,
        }
    }

    /// Lays out, resolves and encodes the module into a [`Binary`] with the
    /// given ISA profile recorded.
    pub fn build(&self, profile: chimera_isa::ExtSet) -> Result<Binary, BuildError> {
        if let Some(d) = &self.duplicate {
            return Err(BuildError::DuplicateLabel(d.clone()));
        }
        let text_base = TEXT_BASE;
        let text_end = text_base + self.text_size;
        let rodata_base = (text_end + 0xfff) & !0xfff;
        let rodata_size = data_size(&self.rodata);
        let data_base = ((rodata_base + rodata_size) + 0xfff) & !0xfff;

        let resolve = |name: &str| -> Result<u64, BuildError> {
            let (space, off) = self
                .labels
                .get(name)
                .ok_or_else(|| BuildError::UndefinedLabel(name.to_string()))?;
            Ok(match space {
                0 => text_base + off,
                1 => rodata_base + off,
                _ => data_base + off,
            })
        };

        // Encode text.
        let mut text = Vec::with_capacity(self.text_size as usize);
        for (off, item) in &self.text {
            let pc = text_base + off;
            debug_assert_eq!(text.len() as u64, *off);
            match item {
                TextItem::Inst(i) => {
                    let w = encode(i).map_err(|e| BuildError::Encode(e.to_string()))?;
                    text.extend_from_slice(&w.to_le_bytes());
                }
                TextItem::CInst(i) => {
                    let h = encode_compressed(i).expect("checked at push");
                    text.extend_from_slice(&h.to_le_bytes());
                }
                TextItem::JalTo { rd, label } => {
                    let target = resolve(label)?;
                    let offset = target as i64 - pc as i64;
                    let inst = Inst::Jal {
                        rd: *rd,
                        offset: i32::try_from(offset).map_err(|_| {
                            BuildError::TargetOutOfRange {
                                label: label.clone(),
                                offset,
                            }
                        })?,
                    };
                    let w = encode(&inst).map_err(|_| BuildError::TargetOutOfRange {
                        label: label.clone(),
                        offset,
                    })?;
                    text.extend_from_slice(&w.to_le_bytes());
                }
                TextItem::BranchTo {
                    kind,
                    rs1,
                    rs2,
                    label,
                } => {
                    let target = resolve(label)?;
                    let offset = target as i64 - pc as i64;
                    let inst = Inst::Branch {
                        kind: *kind,
                        rs1: *rs1,
                        rs2: *rs2,
                        offset: i32::try_from(offset).map_err(|_| {
                            BuildError::TargetOutOfRange {
                                label: label.clone(),
                                offset,
                            }
                        })?,
                    };
                    let w = encode(&inst).map_err(|_| BuildError::TargetOutOfRange {
                        label: label.clone(),
                        offset,
                    })?;
                    text.extend_from_slice(&w.to_le_bytes());
                }
                TextItem::La { rd, label } => {
                    let target = resolve(label)?;
                    let (hi, lo) = pcrel_hi_lo(target as i64 - pc as i64);
                    let a = encode(&Inst::Auipc { rd: *rd, imm20: hi })
                        .map_err(|e| BuildError::Encode(e.to_string()))?;
                    let b = encode(&Inst::OpImm {
                        kind: OpImmKind::Addi,
                        rd: *rd,
                        rs1: *rd,
                        imm: lo,
                    })
                    .map_err(|e| BuildError::Encode(e.to_string()))?;
                    text.extend_from_slice(&a.to_le_bytes());
                    text.extend_from_slice(&b.to_le_bytes());
                }
                TextItem::Call { label } => {
                    let target = resolve(label)?;
                    let (hi, lo) = pcrel_hi_lo(target as i64 - pc as i64);
                    let a = encode(&Inst::Auipc {
                        rd: XReg::RA,
                        imm20: hi,
                    })
                    .map_err(|e| BuildError::Encode(e.to_string()))?;
                    let b = encode(&Inst::Jalr {
                        rd: XReg::RA,
                        rs1: XReg::RA,
                        offset: lo,
                    })
                    .map_err(|e| BuildError::Encode(e.to_string()))?;
                    text.extend_from_slice(&a.to_le_bytes());
                    text.extend_from_slice(&b.to_le_bytes());
                }
                TextItem::Raw(bytes) => text.extend_from_slice(bytes),
            }
        }

        let rodata = encode_data(&self.rodata, &resolve)?;
        let mut data = encode_data(&self.data, &resolve)?;
        if data.len() < 0x1000 {
            data.resize(0x1000, 0);
        }

        let mut sections = vec![Section {
            name: ".text".into(),
            addr: text_base,
            data: text,
            perms: Perms::RX,
        }];
        if !rodata.is_empty() {
            sections.push(Section {
                name: ".rodata".into(),
                addr: rodata_base,
                data: rodata,
                perms: Perms::R,
            });
        }
        sections.push(Section {
            name: ".data".into(),
            addr: data_base,
            data,
            perms: Perms::RW,
        });

        let mut symbols: Vec<Symbol> = Vec::new();
        for name in &self.globals {
            let addr = resolve(name)?;
            let (space, _) = self.labels[name.as_str()];
            symbols.push(Symbol {
                name: name.clone(),
                addr,
                size: 0,
                kind: if space == 0 {
                    SymKind::Func
                } else {
                    SymKind::Object
                },
            });
        }

        let entry = resolve("_start").unwrap_or(text_base);
        let bin = Binary {
            sections,
            symbols,
            entry,
            gp: data_base + 0x800,
            profile,
        };
        bin.validate()
            .map_err(|e| BuildError::Encode(e.to_string()))?;
        Ok(bin)
    }
}

fn data_size(items: &[DataItem]) -> u64 {
    let mut size = 0u64;
    for it in items {
        match it {
            DataItem::Bytes(b) => size += b.len() as u64,
            DataItem::AddrOf(_) => size += 8,
            DataItem::Zero(n) => size += *n as u64,
            DataItem::Align(a) => size = (size + a - 1) & !(a - 1),
        }
    }
    size
}

fn encode_data<F>(items: &[DataItem], resolve: &F) -> Result<Vec<u8>, BuildError>
where
    F: Fn(&str) -> Result<u64, BuildError>,
{
    let mut out = Vec::new();
    for it in items {
        match it {
            DataItem::Bytes(b) => out.extend_from_slice(b),
            DataItem::AddrOf(l) => out.extend_from_slice(&resolve(l)?.to_le_bytes()),
            DataItem::Zero(n) => out.resize(out.len() + n, 0),
            DataItem::Align(a) => {
                let target = ((out.len() as u64 + a - 1) & !(a - 1)) as usize;
                out.resize(target, 0);
            }
        }
    }
    Ok(out)
}

/// Splits a ±2 GiB pc-relative offset into `auipc`'s hi20 and a signed lo12.
pub fn pcrel_hi_lo(offset: i64) -> (i32, i32) {
    let hi = ((offset + 0x800) >> 12) as i32;
    let lo = (offset - ((hi as i64) << 12)) as i32;
    debug_assert!((-2048..=2047).contains(&lo));
    (hi, lo)
}

/// The canonical `li rd, value` expansion: one instruction for i12, two for
/// i32, and a lui/slli/addi chain for wider constants.
pub fn li_sequence(rd: XReg, value: i64) -> Vec<Inst> {
    if (-2048..=2047).contains(&value) {
        return vec![Inst::OpImm {
            kind: OpImmKind::Addi,
            rd,
            rs1: XReg::ZERO,
            imm: value as i32,
        }];
    }
    if i32::try_from(value).is_ok() {
        let v = value as i32;
        let hi = (v.wrapping_add(0x800)) >> 12;
        let lo = v.wrapping_sub(hi << 12);
        let mut seq = vec![Inst::Lui { rd, imm20: hi }];
        if lo != 0 {
            seq.push(Inst::OpImm {
                kind: OpImmKind::Addiw,
                rd,
                rs1: rd,
                imm: lo,
            });
        }
        return seq;
    }
    // Wide constant: materialize the upper 32 bits, shift, then OR in the
    // lower bits 11 at a time (a simple, always-correct schema).
    let hi32 = value >> 32;
    let mut seq = li_sequence(rd, hi32);
    let mut remaining = 32u32;
    let mut low = value as u32 as u64;
    while remaining > 0 {
        let chunk = remaining.min(11);
        seq.push(Inst::OpImm {
            kind: OpImmKind::Slli,
            rd,
            rs1: rd,
            imm: chunk as i32,
        });
        remaining -= chunk;
        let bits = ((low >> remaining) & ((1 << chunk) - 1)) as i32;
        if bits != 0 {
            seq.push(Inst::OpImm {
                kind: OpImmKind::Addi,
                rd,
                rs1: rd,
                imm: bits,
            });
        }
        low &= (1u64 << remaining) - 1;
    }
    seq
}

/// Convenience: `addi` instruction constructor.
pub fn addi(rd: XReg, rs1: XReg, imm: i32) -> Inst {
    Inst::OpImm {
        kind: OpImmKind::Addi,
        rd,
        rs1,
        imm,
    }
}

/// Convenience: `add` instruction constructor.
pub fn add(rd: XReg, rs1: XReg, rs2: XReg) -> Inst {
    Inst::Op {
        kind: OpKind::Add,
        rd,
        rs1,
        rs2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chimera_isa::ExtSet;

    #[test]
    fn simple_module_layout() {
        let mut b = ModuleBuilder::new(false);
        b.label("_start")
            .global("_start")
            .li(XReg::A0, 42)
            .inst(Inst::Ecall);
        let bin = b.build(ExtSet::RV64GC).unwrap();
        bin.validate().unwrap();
        assert_eq!(bin.entry, TEXT_BASE);
        assert_eq!(bin.section(".text").unwrap().data.len(), 8);
        assert!(bin.gp >= bin.section(".data").unwrap().addr);
    }

    #[test]
    fn label_branch_resolution() {
        let mut b = ModuleBuilder::new(false);
        b.label("_start")
            .li(XReg::A0, 3)
            .label("loop")
            .inst(addi(XReg::A0, XReg::A0, -1))
            .bnez(XReg::A0, "loop")
            .inst(Inst::Ecall);
        let bin = b.build(ExtSet::RV64GC).unwrap();
        // The bnez sits at offset 8 and targets offset 4: offset -4.
        let w = bin.read_u32(TEXT_BASE + 8).unwrap();
        let d = chimera_isa::decode(w).unwrap();
        assert_eq!(
            d.inst,
            Inst::Branch {
                kind: BranchKind::Bne,
                rs1: XReg::A0,
                rs2: XReg::ZERO,
                offset: -4
            }
        );
    }

    #[test]
    fn undefined_label_rejected() {
        let mut b = ModuleBuilder::new(false);
        b.label("_start").jump("nowhere");
        assert!(matches!(
            b.build(ExtSet::RV64GC),
            Err(BuildError::UndefinedLabel(_))
        ));
    }

    #[test]
    fn duplicate_label_rejected() {
        let mut b = ModuleBuilder::new(false);
        b.label("x").inst(chimera_isa::nop()).label("x");
        assert!(matches!(
            b.build(ExtSet::RV64GC),
            Err(BuildError::DuplicateLabel(_))
        ));
    }

    #[test]
    fn addr_of_emits_text_address() {
        let mut b = ModuleBuilder::new(false);
        b.label("_start")
            .inst(chimera_isa::nop())
            .label("fn1")
            .ret();
        b.data_label(DataSec::Ro, "table")
            .addr_of(DataSec::Ro, "fn1");
        let bin = b.build(ExtSet::RV64GC).unwrap();
        let table = bin.symbol("table");
        assert!(table.is_none(), "not global unless marked");
        let ro = bin.section(".rodata").unwrap();
        let ptr = u64::from_le_bytes(ro.data[0..8].try_into().unwrap());
        assert_eq!(ptr, TEXT_BASE + 4);
    }

    #[test]
    fn compression_shrinks_text() {
        let prog = |compress| {
            let mut b = ModuleBuilder::new(compress);
            b.label("_start");
            for _ in 0..4 {
                b.inst(addi(XReg::A0, XReg::A0, 1)); // has c.addi form
            }
            b.build(ExtSet::RV64GC).unwrap()
        };
        let fat = prog(false).section(".text").unwrap().data.len();
        let slim = prog(true).section(".text").unwrap().data.len();
        assert_eq!(fat, 16);
        assert_eq!(slim, 8);
    }

    #[test]
    fn li_sequences_are_correct_shapes() {
        assert_eq!(li_sequence(XReg::A0, 0).len(), 1);
        assert_eq!(li_sequence(XReg::A0, 2047).len(), 1);
        assert_eq!(li_sequence(XReg::A0, 4096).len(), 1); // lui only
        assert!(li_sequence(XReg::A0, 0x1234_5678).len() <= 2);
        assert!(li_sequence(XReg::A0, 0x1234_5678_9abc_def0).len() >= 4);
    }

    #[test]
    fn pcrel_split_covers_negative() {
        for off in [-0x1000_0000i64, -0x801, -1, 0, 1, 0x7ff, 0x1234_5678] {
            let (hi, lo) = pcrel_hi_lo(off);
            assert_eq!((hi as i64) << 12, off - lo as i64);
        }
    }

    #[test]
    fn ret_does_not_link() {
        let mut b = ModuleBuilder::new(false);
        b.label("_start").ret();
        let bin = b.build(ExtSet::RV64GC).unwrap();
        let w = bin.read_u32(TEXT_BASE).unwrap();
        assert_eq!(
            chimera_isa::decode(w).unwrap().inst,
            Inst::Jalr {
                rd: XReg::ZERO,
                rs1: XReg::RA,
                offset: 0
            }
        );
    }
}
