//! The loadable binary format: sections with RWX permissions, symbols, an
//! entry point and the psABI `gp` value.
//!
//! This plays the role ELF plays in the paper's system: the rewriter
//! consumes and produces [`Binary`] values, and the emulator's loader maps
//! each section into a permissioned memory region. The format intentionally
//! keeps the properties Chimera's correctness argument needs:
//!
//! * the data segment is **non-executable**, so a jump through an unmodified
//!   `gp` raises a deterministic access fault (the paper's segmentation
//!   fault), and
//! * code addresses are fixed at link time, so indirect-jump targets stored
//!   in data (function-pointer tables, jump tables) remain valid across
//!   in-place patching.

use chimera_isa::ExtSet;
use core::fmt;

/// Section/region permissions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Perms {
    /// Readable.
    pub r: bool,
    /// Writable.
    pub w: bool,
    /// Executable.
    pub x: bool,
}

impl Perms {
    /// Read-only data.
    pub const R: Perms = Perms {
        r: true,
        w: false,
        x: false,
    };
    /// Read-write data.
    pub const RW: Perms = Perms {
        r: true,
        w: true,
        x: false,
    };
    /// Read-execute code.
    pub const RX: Perms = Perms {
        r: true,
        w: false,
        x: true,
    };
    /// Read-write-execute (self-modifying / JIT-style mappings; stores
    /// here must invalidate decode caches).
    pub const RWX: Perms = Perms {
        r: true,
        w: true,
        x: true,
    };
}

impl fmt::Display for Perms {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}",
            if self.r { 'r' } else { '-' },
            if self.w { 'w' } else { '-' },
            if self.x { 'x' } else { '-' }
        )
    }
}

/// A named, addressed, permissioned run of bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Section {
    /// Section name (`.text`, `.data`, `.chimera.text`, ...).
    pub name: String,
    /// Load address of the first byte.
    pub addr: u64,
    /// Section contents.
    pub data: Vec<u8>,
    /// Mapping permissions.
    pub perms: Perms,
}

impl Section {
    /// The address one past the last byte.
    pub fn end(&self) -> u64 {
        self.addr + self.data.len() as u64
    }

    /// Whether `addr` falls inside the section.
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.addr && addr < self.end()
    }
}

/// Symbol kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SymKind {
    /// A function entry point.
    Func,
    /// A data object.
    Object,
}

/// A named address in the binary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Symbol {
    /// Symbol name.
    pub name: String,
    /// Address of the symbol.
    pub addr: u64,
    /// Size in bytes (0 when unknown).
    pub size: u64,
    /// Function or object.
    pub kind: SymKind,
}

/// Default load address of `.text`.
pub const TEXT_BASE: u64 = 0x1_0000;

/// Top of the initial stack (grows down).
pub const STACK_TOP: u64 = 0x4000_0000;

/// Maximum stack reservation in bytes, for workloads that genuinely
/// recurse deep (callers opt in via `Memory::load_with_stack`).
pub const STACK_SIZE: u64 = 8 * 1024 * 1024;

/// Default stack reservation in bytes. Stacks are committed eagerly and
/// always end at [`STACK_TOP`], so the boot `sp` is size-invariant; a
/// small default keeps per-guest footprint O(100 KiB) — at thousands of
/// pooled guests the 8 MiB [`STACK_SIZE`] would dominate the runtime's
/// entire memory budget.
pub const DEFAULT_STACK_SIZE: u64 = 256 * 1024;

/// A complete loadable binary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Binary {
    /// All sections, sorted by address, non-overlapping.
    pub sections: Vec<Section>,
    /// Symbol table.
    pub symbols: Vec<Symbol>,
    /// Initial program counter.
    pub entry: u64,
    /// The psABI `gp` value: a link-time constant pointing into the data
    /// segment (`.data` base + 0x800, mirroring `__global_pointer$`).
    pub gp: u64,
    /// The ISA profile the binary's code assumes.
    pub profile: ExtSet,
}

/// Errors from [`Binary::validate`] and section accessors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BinaryError {
    /// Two sections overlap.
    Overlap {
        /// First section name.
        a: String,
        /// Second section name.
        b: String,
    },
    /// A required section is missing.
    MissingSection(&'static str),
    /// The `gp` value does not point into a non-executable mapped section,
    /// violating the invariant SMILE depends on.
    BadGp(u64),
    /// The entry point is not in an executable section.
    BadEntry(u64),
}

impl fmt::Display for BinaryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BinaryError::Overlap { a, b } => write!(f, "sections {a} and {b} overlap"),
            BinaryError::MissingSection(s) => write!(f, "missing section {s}"),
            BinaryError::BadGp(gp) => write!(
                f,
                "gp {gp:#x} does not point into a mapped non-executable section"
            ),
            BinaryError::BadEntry(e) => write!(f, "entry {e:#x} is not executable"),
        }
    }
}

impl std::error::Error for BinaryError {}

impl Binary {
    /// Checks the structural invariants: sorted non-overlapping sections, a
    /// `.text` section, `gp` pointing into mapped non-executable memory, and
    /// an executable entry point.
    pub fn validate(&self) -> Result<(), BinaryError> {
        for w in self.sections.windows(2) {
            if w[0].end() > w[1].addr {
                return Err(BinaryError::Overlap {
                    a: w[0].name.clone(),
                    b: w[1].name.clone(),
                });
            }
        }
        self.section(".text")
            .ok_or(BinaryError::MissingSection(".text"))?;
        let gp_ok = self
            .sections
            .iter()
            .any(|s| s.contains(self.gp) && !s.perms.x);
        if !gp_ok {
            return Err(BinaryError::BadGp(self.gp));
        }
        let entry_ok = self
            .sections
            .iter()
            .any(|s| s.contains(self.entry) && s.perms.x);
        if !entry_ok {
            return Err(BinaryError::BadEntry(self.entry));
        }
        Ok(())
    }

    /// The section with the given name, if present.
    pub fn section(&self, name: &str) -> Option<&Section> {
        self.sections.iter().find(|s| s.name == name)
    }

    /// Mutable access to the section with the given name.
    pub fn section_mut(&mut self, name: &str) -> Option<&mut Section> {
        self.sections.iter_mut().find(|s| s.name == name)
    }

    /// The section containing `addr`, if any.
    pub fn section_at(&self, addr: u64) -> Option<&Section> {
        self.sections.iter().find(|s| s.contains(addr))
    }

    /// Reads `len` bytes at virtual address `addr`, if fully mapped within
    /// one section.
    pub fn read(&self, addr: u64, len: usize) -> Option<&[u8]> {
        let s = self.section_at(addr)?;
        let off = (addr - s.addr) as usize;
        s.data.get(off..off + len)
    }

    /// Reads a little-endian 32-bit word at `addr` (crossing into the next
    /// padding is not allowed).
    pub fn read_u32(&self, addr: u64) -> Option<u32> {
        let b = self.read(addr, 4)?;
        Some(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian 16-bit halfword at `addr`.
    pub fn read_u16(&self, addr: u64) -> Option<u16> {
        let b = self.read(addr, 2)?;
        Some(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Overwrites `bytes.len()` bytes at `addr`; `false` if unmapped.
    pub fn write(&mut self, addr: u64, bytes: &[u8]) -> bool {
        for s in &mut self.sections {
            if s.contains(addr) && addr + bytes.len() as u64 <= s.end() {
                let off = (addr - s.addr) as usize;
                s.data[off..off + bytes.len()].copy_from_slice(bytes);
                return true;
            }
        }
        false
    }

    /// Looks up a symbol by name.
    pub fn symbol(&self, name: &str) -> Option<&Symbol> {
        self.symbols.iter().find(|s| s.name == name)
    }

    /// Appends a new section after the current highest address (rounded up
    /// to a 4 KiB boundary) and returns its base address. Used by the
    /// rewriter to add target-instruction and vector-spill sections.
    pub fn append_section(&mut self, name: &str, data: Vec<u8>, perms: Perms) -> u64 {
        let top = self.sections.iter().map(Section::end).max().unwrap_or(0);
        let addr = (top + 0xfff) & !0xfff;
        self.sections.push(Section {
            name: name.to_string(),
            addr,
            data,
            perms,
        });
        self.sections.sort_by_key(|s| s.addr);
        addr
    }

    /// Total size of executable sections in bytes (the paper's "code size").
    pub fn code_size(&self) -> u64 {
        self.sections
            .iter()
            .filter(|s| s.perms.x)
            .map(|s| s.data.len() as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Binary {
        Binary {
            sections: vec![
                Section {
                    name: ".text".into(),
                    addr: TEXT_BASE,
                    data: vec![0x13, 0, 0, 0, 0x73, 0, 0, 0],
                    perms: Perms::RX,
                },
                Section {
                    name: ".data".into(),
                    addr: 0x2_0000,
                    data: vec![0u8; 0x1000],
                    perms: Perms::RW,
                },
            ],
            symbols: vec![Symbol {
                name: "_start".into(),
                addr: TEXT_BASE,
                size: 8,
                kind: SymKind::Func,
            }],
            entry: TEXT_BASE,
            gp: 0x2_0800,
            profile: ExtSet::RV64GC,
        }
    }

    #[test]
    fn validate_accepts_wellformed() {
        sample().validate().unwrap();
    }

    #[test]
    fn validate_rejects_executable_gp() {
        let mut b = sample();
        b.gp = TEXT_BASE; // Points into .text: would break SMILE's guarantee.
        assert!(matches!(b.validate(), Err(BinaryError::BadGp(_))));
    }

    #[test]
    fn validate_rejects_overlap() {
        let mut b = sample();
        b.sections[1].addr = TEXT_BASE + 4;
        assert!(matches!(b.validate(), Err(BinaryError::Overlap { .. })));
    }

    #[test]
    fn validate_rejects_data_entry() {
        let mut b = sample();
        b.entry = 0x2_0000;
        assert!(matches!(b.validate(), Err(BinaryError::BadEntry(_))));
    }

    #[test]
    fn read_write_roundtrip() {
        let mut b = sample();
        assert_eq!(b.read_u32(TEXT_BASE), Some(0x13));
        assert!(b.write(0x2_0000, &[1, 2, 3, 4]));
        assert_eq!(b.read(0x2_0000, 4), Some(&[1u8, 2, 3, 4][..]));
        assert!(!b.write(0x9999_0000, &[0]));
    }

    #[test]
    fn read_rejects_cross_section() {
        let b = sample();
        // 4 bytes starting 2 bytes before the end of .text.
        assert_eq!(b.read(TEXT_BASE + 6, 4), None);
    }

    #[test]
    fn append_section_places_after_top() {
        let mut b = sample();
        let addr = b.append_section(".chimera.text", vec![0u8; 16], Perms::RX);
        assert!(addr >= 0x2_1000);
        assert_eq!(addr % 0x1000, 0);
        b.validate().unwrap();
    }

    #[test]
    fn code_size_counts_executable_only() {
        let b = sample();
        assert_eq!(b.code_size(), 8);
    }
}
