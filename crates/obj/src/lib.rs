//! # chimera-obj
//!
//! The loadable binary format ([`Binary`]) of the Chimera reproduction, a
//! programmatic [`ModuleBuilder`], and a text [`assemble`]r.
//!
//! The format stands in for ELF (see DESIGN.md): permissioned sections, a
//! symbol table, an entry point, and the psABI `gp` value that Chimera's
//! SMILE trampoline leans on. The rewriter transforms `Binary → Binary`; the
//! emulator's loader maps sections into permissioned memory regions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod asm;
mod binary;
mod builder;

pub use asm::{assemble, AsmError, AsmOptions};
pub use binary::{
    Binary, BinaryError, Perms, Section, SymKind, Symbol, DEFAULT_STACK_SIZE, STACK_SIZE,
    STACK_TOP, TEXT_BASE,
};
pub use builder::{add, addi, li_sequence, pcrel_hi_lo, BuildError, DataSec, ModuleBuilder};
