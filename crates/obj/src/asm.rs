//! A two-pass text assembler for the modelled RV64IMFDCVB subset.
//!
//! Accepts the syntax the ISA crate's `Display` impl emits (so
//! disassemble→assemble roundtrips), the common GNU-style pseudo
//! instructions (`li`, `la`, `mv`, `call`, `ret`, `j`, `beqz`, ...), and the
//! section/data directives needed to build complete test programs:
//! `.text`, `.data`, `.rodata`, `.global`, `.align`, `.byte`, `.half`,
//! `.word`, `.dword` (which accepts label names, producing absolute code
//! addresses for jump tables), and `.zero`.
//!
//! Comments start with `#` and run to end of line.

use crate::binary::Binary;
use crate::builder::{BuildError, DataSec, ModuleBuilder};
use chimera_isa::{
    BranchKind, Eew, ExtSet, FCmpKind, FMaKind, FOpKind, FReg, FpWidth, Inst, IntWidth, LoadKind,
    OpImmKind, OpKind, StoreKind, UnaryKind, VArithOp, VReg, VSrc, VType, XReg,
};
use std::fmt;

/// Assembler options.
#[derive(Debug, Clone, Copy)]
pub struct AsmOptions {
    /// Emit compressed encodings where available (mirrors compiling with
    /// the C extension enabled).
    pub compress: bool,
    /// The ISA profile recorded in the produced binary.
    pub profile: ExtSet,
}

impl Default for AsmOptions {
    fn default() -> Self {
        AsmOptions {
            compress: false,
            profile: ExtSet::RV64GCV,
        }
    }
}

/// An assembly error with its source line number (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number (0 for link-stage errors).
    pub line: usize,
    /// Error description.
    pub msg: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for AsmError {}

impl From<BuildError> for AsmError {
    fn from(e: BuildError) -> Self {
        AsmError {
            line: 0,
            msg: e.to_string(),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Cursor {
    Text,
    Ro,
    Rw,
}

/// Assembles `source` into a [`Binary`].
pub fn assemble(source: &str, opts: AsmOptions) -> Result<Binary, AsmError> {
    let mut b = ModuleBuilder::new(opts.compress);
    let mut cursor = Cursor::Text;

    for (lineno, raw) in source.lines().enumerate() {
        let line = lineno + 1;
        let mut s = raw;
        if let Some(i) = s.find('#') {
            s = &s[..i];
        }
        let mut s = s.trim();
        // Labels (possibly several, possibly followed by an instruction).
        while let Some(colon) = s.find(':') {
            let (name, rest) = s.split_at(colon);
            let name = name.trim();
            if name.is_empty() || !is_ident(name) {
                return err(line, format!("bad label {name:?}"));
            }
            match cursor {
                Cursor::Text => b.label(name),
                Cursor::Ro => b.data_label(DataSec::Ro, name),
                Cursor::Rw => b.data_label(DataSec::Rw, name),
            };
            s = rest[1..].trim();
        }
        if s.is_empty() {
            continue;
        }
        if let Some(rest) = s.strip_prefix('.') {
            directive(&mut b, &mut cursor, rest, line)?;
            continue;
        }
        if cursor != Cursor::Text {
            return err(line, "instruction outside .text".into());
        }
        instruction(&mut b, s, line)?;
    }
    b.build(opts.profile).map_err(Into::into)
}

fn err<T>(line: usize, msg: String) -> Result<T, AsmError> {
    Err(AsmError { line, msg })
}

fn is_ident(s: &str) -> bool {
    s.chars()
        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.' || c == '$')
}

fn directive(
    b: &mut ModuleBuilder,
    cursor: &mut Cursor,
    rest: &str,
    line: usize,
) -> Result<(), AsmError> {
    let (name, args) = match rest.find(char::is_whitespace) {
        Some(i) => (&rest[..i], rest[i..].trim()),
        None => (rest, ""),
    };
    let sec = match cursor {
        Cursor::Ro => DataSec::Ro,
        _ => DataSec::Rw,
    };
    match name {
        "text" => *cursor = Cursor::Text,
        "data" => *cursor = Cursor::Rw,
        "rodata" => *cursor = Cursor::Ro,
        "global" | "globl" => {
            b.global(args);
        }
        "align" | "p2align" => {
            let n: u64 = args.parse().map_err(|_| AsmError {
                line,
                msg: format!("bad alignment {args:?}"),
            })?;
            if *cursor == Cursor::Text {
                return err(line, ".align in .text is unsupported".into());
            }
            b.align(sec, 1 << n);
        }
        "byte" | "half" | "word" | "dword" | "quad" => {
            if *cursor == Cursor::Text {
                return err(line, "data directive in .text".into());
            }
            for tok in args.split(',') {
                let tok = tok.trim();
                if let Ok(v) = parse_int(tok) {
                    match name {
                        "byte" => b.data_bytes(sec, &[(v as u8)]),
                        "half" => b.data_bytes(sec, &(v as u16).to_le_bytes()),
                        "word" => b.word(sec, v as u32),
                        _ => b.dword(sec, v as u64),
                    };
                } else if (name == "dword" || name == "quad") && is_ident(tok) {
                    b.addr_of(sec, tok);
                } else {
                    return err(line, format!("bad data value {tok:?}"));
                }
            }
        }
        "double" => {
            for tok in args.split(',') {
                let v: f64 = tok.trim().parse().map_err(|_| AsmError {
                    line,
                    msg: format!("bad double {tok:?}"),
                })?;
                b.double(sec, v);
            }
        }
        "float" => {
            for tok in args.split(',') {
                let v: f32 = tok.trim().parse().map_err(|_| AsmError {
                    line,
                    msg: format!("bad float {tok:?}"),
                })?;
                b.data_bytes(sec, &v.to_le_bytes());
            }
        }
        "zero" | "skip" | "space" => {
            let n: usize = args.parse().map_err(|_| AsmError {
                line,
                msg: format!("bad size {args:?}"),
            })?;
            if *cursor == Cursor::Text {
                return err(line, ".zero in .text is unsupported".into());
            }
            b.zero(sec, n);
        }
        other => return err(line, format!("unknown directive .{other}")),
    }
    Ok(())
}

fn parse_int(s: &str) -> Result<i64, ()> {
    let s = s.trim();
    let (neg, s) = match s.strip_prefix('-') {
        Some(r) => (true, r),
        None => (false, s),
    };
    let v = if let Some(h) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(h, 16).map_err(|_| ())? as i64
    } else if let Some(h) = s.strip_prefix("0b") {
        u64::from_str_radix(h, 2).map_err(|_| ())? as i64
    } else {
        s.parse::<i64>().map_err(|_| ())?
    };
    Ok(if neg { -v } else { v })
}

fn parse_xreg(s: &str) -> Result<XReg, ()> {
    let s = s.trim();
    for r in XReg::all() {
        if r.abi_name() == s {
            return Ok(r);
        }
    }
    if let Some(n) = s.strip_prefix('x') {
        if let Ok(i) = n.parse::<u8>() {
            return XReg::new(i).ok_or(());
        }
    }
    if s == "fp" {
        return Ok(XReg::S0);
    }
    Err(())
}

fn parse_freg(s: &str) -> Result<FReg, ()> {
    let s = s.trim();
    for r in FReg::all() {
        if r.abi_name() == s {
            return Ok(r);
        }
    }
    if let Some(n) = s.strip_prefix('f') {
        if let Ok(i) = n.parse::<u8>() {
            return FReg::new(i).ok_or(());
        }
    }
    Err(())
}

fn parse_vreg(s: &str) -> Result<VReg, ()> {
    let s = s.trim();
    if let Some(n) = s.strip_prefix('v') {
        if let Ok(i) = n.parse::<u8>() {
            return VReg::new(i).ok_or(());
        }
    }
    Err(())
}

/// Parses `offset(reg)` or `(reg)`.
fn parse_memref(s: &str) -> Result<(i32, XReg), ()> {
    let s = s.trim();
    let open = s.find('(').ok_or(())?;
    if !s.ends_with(')') {
        return Err(());
    }
    let off_s = s[..open].trim();
    let off = if off_s.is_empty() {
        0
    } else {
        parse_int(off_s)? as i32
    };
    let reg = parse_xreg(&s[open + 1..s.len() - 1])?;
    Ok((off, reg))
}

struct Ops<'a> {
    parts: Vec<&'a str>,
    line: usize,
    mnemonic: &'a str,
}

impl<'a> Ops<'a> {
    fn n(&self) -> usize {
        self.parts.len()
    }

    fn e(&self, what: &str) -> AsmError {
        AsmError {
            line: self.line,
            msg: format!("{}: bad/missing {what}", self.mnemonic),
        }
    }

    fn x(&self, i: usize) -> Result<XReg, AsmError> {
        self.parts
            .get(i)
            .copied()
            .ok_or_else(|| self.e("register"))
            .and_then(|s| parse_xreg(s).map_err(|_| self.e("x-register")))
    }

    fn f(&self, i: usize) -> Result<FReg, AsmError> {
        self.parts
            .get(i)
            .copied()
            .ok_or_else(|| self.e("register"))
            .and_then(|s| parse_freg(s).map_err(|_| self.e("f-register")))
    }

    fn v(&self, i: usize) -> Result<VReg, AsmError> {
        self.parts
            .get(i)
            .copied()
            .ok_or_else(|| self.e("register"))
            .and_then(|s| parse_vreg(s).map_err(|_| self.e("v-register")))
    }

    fn imm(&self, i: usize) -> Result<i64, AsmError> {
        self.parts
            .get(i)
            .copied()
            .ok_or_else(|| self.e("immediate"))
            .and_then(|s| parse_int(s).map_err(|_| self.e("immediate")))
    }

    fn mem(&self, i: usize) -> Result<(i32, XReg), AsmError> {
        self.parts
            .get(i)
            .copied()
            .ok_or_else(|| self.e("memory operand"))
            .and_then(|s| parse_memref(s).map_err(|_| self.e("memory operand")))
    }

    fn label(&self, i: usize) -> Result<&'a str, AsmError> {
        let s = self.parts.get(i).copied().ok_or_else(|| self.e("label"))?;
        if is_ident(s) && parse_int(s).is_err() {
            Ok(s)
        } else {
            Err(self.e("label"))
        }
    }

    /// Either a numeric byte offset or a label.
    fn target(&self, i: usize) -> Result<Target<'a>, AsmError> {
        let s = self
            .parts
            .get(i)
            .copied()
            .ok_or_else(|| self.e("branch target"))?;
        if let Ok(v) = parse_int(s) {
            Ok(Target::Offset(v as i32))
        } else if is_ident(s) {
            Ok(Target::Label(s))
        } else {
            Err(self.e("branch target"))
        }
    }
}

enum Target<'a> {
    Offset(i32),
    Label(&'a str),
}

fn instruction(b: &mut ModuleBuilder, s: &str, line: usize) -> Result<(), AsmError> {
    let (mnemonic, rest) = match s.find(char::is_whitespace) {
        Some(i) => (&s[..i], s[i..].trim()),
        None => (s, ""),
    };
    let parts: Vec<&str> = if rest.is_empty() {
        Vec::new()
    } else {
        rest.split(',').map(str::trim).collect()
    };
    let o = Ops {
        parts,
        line,
        mnemonic,
    };

    // Branch kinds (canonical names).
    let branch_kind = |m: &str| -> Option<BranchKind> {
        Some(match m {
            "beq" => BranchKind::Beq,
            "bne" => BranchKind::Bne,
            "blt" => BranchKind::Blt,
            "bge" => BranchKind::Bge,
            "bltu" => BranchKind::Bltu,
            "bgeu" => BranchKind::Bgeu,
            _ => return None,
        })
    };
    let load_kind = |m: &str| -> Option<LoadKind> {
        Some(match m {
            "lb" => LoadKind::Lb,
            "lh" => LoadKind::Lh,
            "lw" => LoadKind::Lw,
            "ld" => LoadKind::Ld,
            "lbu" => LoadKind::Lbu,
            "lhu" => LoadKind::Lhu,
            "lwu" => LoadKind::Lwu,
            _ => return None,
        })
    };
    let store_kind = |m: &str| -> Option<StoreKind> {
        Some(match m {
            "sb" => StoreKind::Sb,
            "sh" => StoreKind::Sh,
            "sw" => StoreKind::Sw,
            "sd" => StoreKind::Sd,
            _ => return None,
        })
    };
    let opimm_kind = |m: &str| -> Option<OpImmKind> {
        Some(match m {
            "addi" => OpImmKind::Addi,
            "slti" => OpImmKind::Slti,
            "sltiu" => OpImmKind::Sltiu,
            "xori" => OpImmKind::Xori,
            "ori" => OpImmKind::Ori,
            "andi" => OpImmKind::Andi,
            "slli" => OpImmKind::Slli,
            "srli" => OpImmKind::Srli,
            "srai" => OpImmKind::Srai,
            "addiw" => OpImmKind::Addiw,
            "slliw" => OpImmKind::Slliw,
            "srliw" => OpImmKind::Srliw,
            "sraiw" => OpImmKind::Sraiw,
            "rori" => OpImmKind::Rori,
            _ => return None,
        })
    };
    let op_kind = |m: &str| -> Option<OpKind> {
        Some(match m {
            "add" => OpKind::Add,
            "sub" => OpKind::Sub,
            "sll" => OpKind::Sll,
            "slt" => OpKind::Slt,
            "sltu" => OpKind::Sltu,
            "xor" => OpKind::Xor,
            "srl" => OpKind::Srl,
            "sra" => OpKind::Sra,
            "or" => OpKind::Or,
            "and" => OpKind::And,
            "addw" => OpKind::Addw,
            "subw" => OpKind::Subw,
            "sllw" => OpKind::Sllw,
            "srlw" => OpKind::Srlw,
            "sraw" => OpKind::Sraw,
            "mul" => OpKind::Mul,
            "mulh" => OpKind::Mulh,
            "mulhsu" => OpKind::Mulhsu,
            "mulhu" => OpKind::Mulhu,
            "div" => OpKind::Div,
            "divu" => OpKind::Divu,
            "rem" => OpKind::Rem,
            "remu" => OpKind::Remu,
            "mulw" => OpKind::Mulw,
            "divw" => OpKind::Divw,
            "divuw" => OpKind::Divuw,
            "remw" => OpKind::Remw,
            "remuw" => OpKind::Remuw,
            "sh1add" => OpKind::Sh1add,
            "sh2add" => OpKind::Sh2add,
            "sh3add" => OpKind::Sh3add,
            "add.uw" => OpKind::AddUw,
            "andn" => OpKind::Andn,
            "orn" => OpKind::Orn,
            "xnor" => OpKind::Xnor,
            "min" => OpKind::Min,
            "minu" => OpKind::Minu,
            "max" => OpKind::Max,
            "maxu" => OpKind::Maxu,
            "rol" => OpKind::Rol,
            "ror" => OpKind::Ror,
            _ => return None,
        })
    };
    let unary_kind = |m: &str| -> Option<UnaryKind> {
        Some(match m {
            "clz" => UnaryKind::Clz,
            "ctz" => UnaryKind::Ctz,
            "cpop" => UnaryKind::Cpop,
            "sext.b" => UnaryKind::SextB,
            "sext.h" => UnaryKind::SextH,
            "zext.h" => UnaryKind::ZextH,
            "rev8" => UnaryKind::Rev8,
            _ => return None,
        })
    };

    if let Some(kind) = branch_kind(mnemonic) {
        let (rs1, rs2) = (o.x(0)?, o.x(1)?);
        match o.target(2)? {
            Target::Offset(offset) => {
                b.inst(Inst::Branch {
                    kind,
                    rs1,
                    rs2,
                    offset,
                });
            }
            Target::Label(l) => {
                b.branch_to(kind, rs1, rs2, l);
            }
        }
        return Ok(());
    }
    if let Some(kind) = load_kind(mnemonic) {
        let rd = o.x(0)?;
        let (offset, rs1) = o.mem(1)?;
        b.inst(Inst::Load {
            kind,
            rd,
            rs1,
            offset,
        });
        return Ok(());
    }
    if let Some(kind) = store_kind(mnemonic) {
        let rs2 = o.x(0)?;
        let (offset, rs1) = o.mem(1)?;
        b.inst(Inst::Store {
            kind,
            rs1,
            rs2,
            offset,
        });
        return Ok(());
    }
    if let Some(kind) = opimm_kind(mnemonic) {
        b.inst(Inst::OpImm {
            kind,
            rd: o.x(0)?,
            rs1: o.x(1)?,
            imm: o.imm(2)? as i32,
        });
        return Ok(());
    }
    if let Some(kind) = op_kind(mnemonic) {
        b.inst(Inst::Op {
            kind,
            rd: o.x(0)?,
            rs1: o.x(1)?,
            rs2: o.x(2)?,
        });
        return Ok(());
    }
    if let Some(kind) = unary_kind(mnemonic) {
        b.inst(Inst::Unary {
            kind,
            rd: o.x(0)?,
            rs1: o.x(1)?,
        });
        return Ok(());
    }

    match mnemonic {
        "lui" => {
            b.inst(Inst::Lui {
                rd: o.x(0)?,
                imm20: o.imm(1)? as i32,
            });
        }
        "auipc" => {
            b.inst(Inst::Auipc {
                rd: o.x(0)?,
                imm20: o.imm(1)? as i32,
            });
        }
        "jal" => match o.n() {
            1 => match o.target(0)? {
                Target::Offset(offset) => {
                    b.inst(Inst::Jal {
                        rd: XReg::RA,
                        offset,
                    });
                }
                Target::Label(l) => {
                    b.jal_to(XReg::RA, l);
                }
            },
            2 => {
                let rd = o.x(0)?;
                match o.target(1)? {
                    Target::Offset(offset) => {
                        b.inst(Inst::Jal { rd, offset });
                    }
                    Target::Label(l) => {
                        b.jal_to(rd, l);
                    }
                }
            }
            _ => return err(line, "jal: expected 1 or 2 operands".into()),
        },
        "jalr" => match o.n() {
            1 => {
                if let Ok(rs1) = o.x(0) {
                    b.inst(Inst::Jalr {
                        rd: XReg::RA,
                        rs1,
                        offset: 0,
                    });
                } else {
                    let (offset, rs1) = o.mem(0)?;
                    b.inst(Inst::Jalr {
                        rd: XReg::RA,
                        rs1,
                        offset,
                    });
                }
            }
            2 => {
                let rd = o.x(0)?;
                let (offset, rs1) = o.mem(1)?;
                b.inst(Inst::Jalr { rd, rs1, offset });
            }
            _ => return err(line, "jalr: expected 1 or 2 operands".into()),
        },
        "fence" => {
            b.inst(Inst::Fence);
        }
        "ecall" => {
            b.inst(Inst::Ecall);
        }
        "ebreak" => {
            b.inst(Inst::Ebreak);
        }
        // Pseudo instructions.
        "nop" => {
            b.inst(chimera_isa::nop());
        }
        "mv" => {
            b.inst(chimera_isa::mv(o.x(0)?, o.x(1)?));
        }
        "neg" => {
            b.inst(Inst::Op {
                kind: OpKind::Sub,
                rd: o.x(0)?,
                rs1: XReg::ZERO,
                rs2: o.x(1)?,
            });
        }
        "not" => {
            b.inst(Inst::OpImm {
                kind: OpImmKind::Xori,
                rd: o.x(0)?,
                rs1: o.x(1)?,
                imm: -1,
            });
        }
        "seqz" => {
            b.inst(Inst::OpImm {
                kind: OpImmKind::Sltiu,
                rd: o.x(0)?,
                rs1: o.x(1)?,
                imm: 1,
            });
        }
        "snez" => {
            b.inst(Inst::Op {
                kind: OpKind::Sltu,
                rd: o.x(0)?,
                rs1: XReg::ZERO,
                rs2: o.x(1)?,
            });
        }
        "li" => {
            b.li(o.x(0)?, o.imm(1)?);
        }
        "la" => {
            b.la(o.x(0)?, o.label(1)?);
        }
        "j" => match o.target(0)? {
            Target::Offset(offset) => {
                b.inst(Inst::Jal {
                    rd: XReg::ZERO,
                    offset,
                });
            }
            Target::Label(l) => {
                b.jump(l);
            }
        },
        "jr" => {
            b.inst(Inst::Jalr {
                rd: XReg::ZERO,
                rs1: o.x(0)?,
                offset: 0,
            });
        }
        "ret" => {
            b.ret();
        }
        "call" => {
            b.call(o.label(0)?);
        }
        "beqz" | "bnez" => {
            let kind = if mnemonic == "beqz" {
                BranchKind::Beq
            } else {
                BranchKind::Bne
            };
            let rs = o.x(0)?;
            match o.target(1)? {
                Target::Offset(offset) => {
                    b.inst(Inst::Branch {
                        kind,
                        rs1: rs,
                        rs2: XReg::ZERO,
                        offset,
                    });
                }
                Target::Label(l) => {
                    b.branch_to(kind, rs, XReg::ZERO, l);
                }
            }
        }
        "flw" | "fld" => {
            let width = if mnemonic == "flw" {
                FpWidth::S
            } else {
                FpWidth::D
            };
            let frd = o.f(0)?;
            let (offset, rs1) = o.mem(1)?;
            b.inst(Inst::FLoad {
                width,
                frd,
                rs1,
                offset,
            });
        }
        "fsw" | "fsd" => {
            let width = if mnemonic == "fsw" {
                FpWidth::S
            } else {
                FpWidth::D
            };
            let frs2 = o.f(0)?;
            let (offset, rs1) = o.mem(1)?;
            b.inst(Inst::FStore {
                width,
                frs2,
                rs1,
                offset,
            });
        }
        "vsetvli" => {
            // vsetvli rd, rs1, eN, mN, ta|tu, ma|mu
            let rd = o.x(0)?;
            let rs1 = o.x(1)?;
            let sew = match o.parts.get(2).copied() {
                Some("e8") => Eew::E8,
                Some("e16") => Eew::E16,
                Some("e32") => Eew::E32,
                Some("e64") => Eew::E64,
                _ => return err(line, "vsetvli: bad sew".into()),
            };
            let lmul = match o.parts.get(3).copied() {
                Some("m1") => 1,
                Some("m2") => 2,
                Some("m4") => 4,
                Some("m8") => 8,
                _ => return err(line, "vsetvli: bad lmul".into()),
            };
            let ta = match o.parts.get(4).copied() {
                Some("ta") | None => true,
                Some("tu") => false,
                _ => return err(line, "vsetvli: bad ta/tu".into()),
            };
            let ma = match o.parts.get(5).copied() {
                Some("ma") | None => true,
                Some("mu") => false,
                _ => return err(line, "vsetvli: bad ma/mu".into()),
            };
            b.inst(Inst::Vsetvli {
                rd,
                rs1,
                vtype: VType { sew, lmul, ta, ma },
            });
        }
        "vmv.x.s" => {
            b.inst(Inst::VMvXS {
                rd: o.x(0)?,
                vs2: o.v(1)?,
            });
        }
        "vmv.s.x" => {
            b.inst(Inst::VMvSX {
                vd: o.v(0)?,
                rs1: o.x(1)?,
            });
        }
        "vmv.v.v" => {
            b.inst(Inst::VArith {
                op: VArithOp::Vmv,
                vd: o.v(0)?,
                vs2: VReg::V0,
                src: VSrc::V(o.v(1)?),
            });
        }
        "vmv.v.x" => {
            b.inst(Inst::VArith {
                op: VArithOp::Vmv,
                vd: o.v(0)?,
                vs2: VReg::V0,
                src: VSrc::X(o.x(1)?),
            });
        }
        "vmv.v.i" => {
            b.inst(Inst::VArith {
                op: VArithOp::Vmv,
                vd: o.v(0)?,
                vs2: VReg::V0,
                src: VSrc::I(o.imm(1)? as i8),
            });
        }
        m => {
            // FP alu/compare/fma/cvt/mv with width suffix, or vector arith
            // with form suffix.
            if try_fp(b, m, &o)? || try_vector(b, m, &o)? {
                return Ok(());
            }
            return err(line, format!("unknown mnemonic {m:?}"));
        }
    }
    Ok(())
}

fn try_fp(b: &mut ModuleBuilder, m: &str, o: &Ops<'_>) -> Result<bool, AsmError> {
    let Some(dot) = m.rfind('.') else {
        return Ok(false);
    };
    let (stem, suffix) = (&m[..dot], &m[dot + 1..]);
    let width = match suffix {
        "s" => FpWidth::S,
        "d" => FpWidth::D,
        "w" | "x" | "l" | "wu" | "lu" => {
            // fmv.x.d / fmv.d.x / fcvt forms handled below by full match.
            return try_fp_full(b, m, o);
        }
        _ => return Ok(false),
    };
    let fop = |k: FOpKind| -> Option<FOpKind> { Some(k) };
    let kind = match stem {
        "fadd" => fop(FOpKind::Add),
        "fsub" => fop(FOpKind::Sub),
        "fmul" => fop(FOpKind::Mul),
        "fdiv" => fop(FOpKind::Div),
        "fmin" => fop(FOpKind::Min),
        "fmax" => fop(FOpKind::Max),
        "fsgnj" => fop(FOpKind::SgnJ),
        "fsgnjn" => fop(FOpKind::SgnJN),
        "fsgnjx" => fop(FOpKind::SgnJX),
        _ => None,
    };
    if let Some(kind) = kind {
        b.inst(Inst::FOp {
            kind,
            width,
            frd: o.f(0)?,
            frs1: o.f(1)?,
            frs2: o.f(2)?,
        });
        return Ok(true);
    }
    let cmp = match stem {
        "feq" => Some(FCmpKind::Feq),
        "flt" => Some(FCmpKind::Flt),
        "fle" => Some(FCmpKind::Fle),
        _ => None,
    };
    if let Some(kind) = cmp {
        b.inst(Inst::FCmp {
            kind,
            width,
            rd: o.x(0)?,
            frs1: o.f(1)?,
            frs2: o.f(2)?,
        });
        return Ok(true);
    }
    let fma = match stem {
        "fmadd" => Some(FMaKind::Madd),
        "fmsub" => Some(FMaKind::Msub),
        "fnmsub" => Some(FMaKind::Nmsub),
        "fnmadd" => Some(FMaKind::Nmadd),
        _ => None,
    };
    if let Some(kind) = fma {
        b.inst(Inst::FMa {
            kind,
            width,
            frd: o.f(0)?,
            frs1: o.f(1)?,
            frs2: o.f(2)?,
            frs3: o.f(3)?,
        });
        return Ok(true);
    }
    // Pseudos: fmv.d fd, fs; fneg.d; fabs.d.
    let pseudo = match stem {
        "fmv" => Some(FOpKind::SgnJ),
        "fneg" => Some(FOpKind::SgnJN),
        "fabs" => Some(FOpKind::SgnJX),
        _ => None,
    };
    if let Some(kind) = pseudo {
        let fs = o.f(1)?;
        b.inst(Inst::FOp {
            kind,
            width,
            frd: o.f(0)?,
            frs1: fs,
            frs2: fs,
        });
        return Ok(true);
    }
    try_fp_full(b, m, o)
}

fn try_fp_full(b: &mut ModuleBuilder, m: &str, o: &Ops<'_>) -> Result<bool, AsmError> {
    // fmv.x.w / fmv.x.d / fmv.w.x / fmv.d.x
    match m {
        "fmv.x.w" | "fmv.x.d" => {
            let width = if m.ends_with('w') {
                FpWidth::S
            } else {
                FpWidth::D
            };
            b.inst(Inst::FMvToX {
                width,
                rd: o.x(0)?,
                frs1: o.f(1)?,
            });
            return Ok(true);
        }
        "fmv.w.x" | "fmv.d.x" => {
            let width = if m.starts_with("fmv.w") {
                FpWidth::S
            } else {
                FpWidth::D
            };
            b.inst(Inst::FMvToF {
                width,
                frd: o.f(0)?,
                rs1: o.x(1)?,
            });
            return Ok(true);
        }
        "fcvt.d.s" => {
            b.inst(Inst::FCvtFF {
                to: FpWidth::D,
                frd: o.f(0)?,
                frs1: o.f(1)?,
            });
            return Ok(true);
        }
        "fcvt.s.d" => {
            b.inst(Inst::FCvtFF {
                to: FpWidth::S,
                frd: o.f(0)?,
                frs1: o.f(1)?,
            });
            return Ok(true);
        }
        _ => {}
    }
    // fcvt.{fmt}.{int} and fcvt.{int}.{fmt}
    let parts: Vec<&str> = m.split('.').collect();
    if parts.len() == 3 && parts[0] == "fcvt" {
        let fpw = |s: &str| match s {
            "s" => Some(FpWidth::S),
            "d" => Some(FpWidth::D),
            _ => None,
        };
        let intw = |s: &str| match s {
            "w" => Some((IntWidth::W, true)),
            "wu" => Some((IntWidth::W, false)),
            "l" => Some((IntWidth::L, true)),
            "lu" => Some((IntWidth::L, false)),
            _ => None,
        };
        if let (Some(width), Some((from, signed))) = (fpw(parts[1]), intw(parts[2])) {
            b.inst(Inst::FCvtToF {
                width,
                from,
                signed,
                frd: o.f(0)?,
                rs1: o.x(1)?,
            });
            return Ok(true);
        }
        if let (Some((to, signed)), Some(width)) = (intw(parts[1]), fpw(parts[2])) {
            b.inst(Inst::FCvtToInt {
                width,
                to,
                signed,
                rd: o.x(0)?,
                frs1: o.f(1)?,
            });
            return Ok(true);
        }
    }
    Ok(false)
}

fn try_vector(b: &mut ModuleBuilder, m: &str, o: &Ops<'_>) -> Result<bool, AsmError> {
    // Vector loads/stores: vle{8,16,32,64}.v / vse{8,16,32,64}.v
    if let Some(rest) = m.strip_prefix("vle").or_else(|| m.strip_prefix("vse")) {
        if let Some(bits) = rest.strip_suffix(".v") {
            let eew = match bits {
                "8" => Eew::E8,
                "16" => Eew::E16,
                "32" => Eew::E32,
                "64" => Eew::E64,
                _ => return Ok(false),
            };
            let vreg = o.v(0)?;
            let (offset, rs1) = o.mem(1)?;
            if offset != 0 {
                return Err(o.e("vector memory operand must have no offset"));
            }
            if m.starts_with("vle") {
                b.inst(Inst::VLoad { eew, vd: vreg, rs1 });
            } else {
                b.inst(Inst::VStore {
                    eew,
                    vs3: vreg,
                    rs1,
                });
            }
            return Ok(true);
        }
    }
    // Arithmetic: stem.{vv,vx,vi,vf,vs}
    let Some(dot) = m.rfind('.') else {
        return Ok(false);
    };
    let (stem, form) = (&m[..dot], &m[dot + 1..]);
    let op = match stem {
        "vadd" => VArithOp::Vadd,
        "vsub" => VArithOp::Vsub,
        "vand" => VArithOp::Vand,
        "vor" => VArithOp::Vor,
        "vxor" => VArithOp::Vxor,
        "vmul" => VArithOp::Vmul,
        "vmacc" => VArithOp::Vmacc,
        "vmin" => VArithOp::Vmin,
        "vmax" => VArithOp::Vmax,
        "vredsum" => VArithOp::Vredsum,
        "vfadd" => VArithOp::Vfadd,
        "vfsub" => VArithOp::Vfsub,
        "vfmul" => VArithOp::Vfmul,
        "vfdiv" => VArithOp::Vfdiv,
        "vfmacc" => VArithOp::Vfmacc,
        "vfredusum" => VArithOp::Vfredusum,
        _ => return Ok(false),
    };
    let vd = o.v(0)?;
    let vs2 = o.v(1)?;
    let src = match form {
        "vv" | "vs" => VSrc::V(o.v(2)?),
        "vx" => VSrc::X(o.x(2)?),
        "vf" => VSrc::F(o.f(2)?),
        "vi" => VSrc::I(o.imm(2)? as i8),
        _ => return Ok(false),
    };
    b.inst(Inst::VArith { op, vd, vs2, src });
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binary::TEXT_BASE;
    use chimera_isa::decode;

    fn asm(src: &str) -> Binary {
        assemble(src, AsmOptions::default()).expect("assembles")
    }

    #[test]
    fn minimal_program() {
        let bin = asm("
            .text
            _start:
                li a0, 42
                ecall
        ");
        assert_eq!(bin.entry, TEXT_BASE);
        let w = bin.read_u32(TEXT_BASE).unwrap();
        assert_eq!(
            decode(w).unwrap().inst,
            Inst::OpImm {
                kind: OpImmKind::Addi,
                rd: XReg::A0,
                rs1: XReg::ZERO,
                imm: 42
            }
        );
    }

    #[test]
    fn loops_and_branches() {
        let bin = asm("
            _start:
                li t0, 10
                li t1, 0
            loop:
                add t1, t1, t0
                addi t0, t0, -1
                bnez t0, loop
                ecall
        ");
        bin.validate().unwrap();
    }

    #[test]
    fn data_and_la() {
        let bin = asm("
            .data
            counter: .dword 7
            .text
            _start:
                la a0, counter
                ld a1, 0(a0)
                ecall
        ");
        let counter = bin.section(".data").unwrap();
        assert_eq!(
            u64::from_le_bytes(counter.data[0..8].try_into().unwrap()),
            7
        );
    }

    #[test]
    fn jump_table_via_dword_label() {
        let bin = asm("
            .text
            _start:
                nop
            f1: ret
            f2: ret
            .rodata
            table:
                .dword f1
                .dword f2
        ");
        let ro = bin.section(".rodata").unwrap();
        let p1 = u64::from_le_bytes(ro.data[0..8].try_into().unwrap());
        let p2 = u64::from_le_bytes(ro.data[8..16].try_into().unwrap());
        assert_eq!(p1, TEXT_BASE + 4);
        assert_eq!(p2, TEXT_BASE + 8);
    }

    #[test]
    fn vector_section_roundtrip() {
        let bin = asm("
            _start:
                vsetvli t0, a2, e64, m1, ta, ma
                vle64.v v1, (a0)
                vle64.v v2, (a1)
                vfmacc.vv v3, v1, v2
                vse64.v v3, (a0)
                vredsum.vs v4, v1, v2
                vadd.vi v5, v1, -3
                vmv.v.x v6, a3
                ecall
        ");
        bin.validate().unwrap();
        // Spot-check one decode.
        let w = bin.read_u32(TEXT_BASE + 4).unwrap();
        assert_eq!(
            decode(w).unwrap().inst,
            Inst::VLoad {
                eew: Eew::E64,
                vd: VReg::of(1),
                rs1: XReg::A0
            }
        );
    }

    #[test]
    fn fp_mnemonics() {
        let bin = asm("
            _start:
                fld fa0, 0(a0)
                fadd.d fa1, fa0, fa0
                fmadd.d fa2, fa0, fa1, fa1
                fcvt.d.l fa3, a1
                fcvt.l.d a2, fa3
                fmv.x.d a3, fa2
                feq.d a4, fa1, fa2
                fsd fa2, 8(a0)
                ecall
        ");
        bin.validate().unwrap();
    }

    #[test]
    fn unknown_mnemonic_reports_line() {
        let e = assemble("_start:\n  frobnicate a0\n", AsmOptions::default()).unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn compressed_option_shrinks() {
        let src = "
            _start:
                addi a0, a0, 1
                addi a0, a0, 1
                ecall
        ";
        let fat = assemble(
            src,
            AsmOptions {
                compress: false,
                ..Default::default()
            },
        )
        .unwrap();
        let slim = assemble(
            src,
            AsmOptions {
                compress: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            slim.section(".text").unwrap().data.len() < fat.section(".text").unwrap().data.len()
        );
    }

    #[test]
    fn zbb_and_m_mnemonics() {
        let bin = asm("
            _start:
                sh1add a0, a1, a2
                mul a3, a4, a5
                clz t0, t1
                rev8 t2, t3
                zext.h s2, s3
                add.uw s4, s5, s6
                ecall
        ");
        bin.validate().unwrap();
    }
}
