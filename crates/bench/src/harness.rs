//! A dependency-free micro-benchmark harness (wall-clock, median-of-runs).
//!
//! The workspace builds with zero registry dependencies, so the
//! `benches/*.rs` targets (behind the `bench-harness` feature) use this
//! module instead of Criterion. It is intentionally simple: warm up, time
//! a fixed number of batches, report min/median/mean. Good enough to spot
//! order-of-magnitude changes (e.g. the decode cache's ≥2x throughput win)
//! without statistical machinery.

use std::time::Instant;

/// One benchmark's timing summary, in nanoseconds per iteration.
#[derive(Debug, Clone, Copy)]
pub struct Timing {
    /// Fastest batch (ns/iter).
    pub min_ns: f64,
    /// Median batch (ns/iter).
    pub median_ns: f64,
    /// Mean over all batches (ns/iter).
    pub mean_ns: f64,
    /// Iterations per batch used.
    pub iters: u64,
}

/// Times `f` and prints a `name: median … (min …, mean …)` line.
///
/// Runs a calibration pass to pick an iteration count targeting roughly
/// `budget_ms` per batch, then times `batches` batches.
pub fn bench<R>(name: &str, budget_ms: u64, batches: usize, mut f: impl FnMut() -> R) -> Timing {
    // Calibrate: grow the iteration count until one batch takes ≳ budget.
    let budget_ns = (budget_ms.max(1) * 1_000_000) as u128;
    let mut iters: u64 = 1;
    loop {
        let t0 = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        let elapsed = t0.elapsed().as_nanos();
        if elapsed >= budget_ns || iters >= 1 << 24 {
            break;
        }
        // Aim directly at the budget, with a 2x floor to converge fast.
        let scale = (budget_ns as f64 / elapsed.max(1) as f64).max(2.0);
        iters = ((iters as f64 * scale) as u64).clamp(iters + 1, 1 << 24);
    }

    let mut per_iter: Vec<f64> = Vec::with_capacity(batches);
    for _ in 0..batches.max(1) {
        let t0 = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        per_iter.push(t0.elapsed().as_nanos() as f64 / iters as f64);
    }
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let timing = Timing {
        min_ns: per_iter[0],
        median_ns: per_iter[per_iter.len() / 2],
        mean_ns: per_iter.iter().sum::<f64>() / per_iter.len() as f64,
        iters,
    };
    println!(
        "{name:<40} median {:>12} (min {}, mean {}, {} iters/batch)",
        fmt_ns(timing.median_ns),
        fmt_ns(timing.min_ns),
        fmt_ns(timing.mean_ns),
        timing.iters
    );
    timing
}

/// Formats nanoseconds human-readably.
pub fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Prints an `elements/second` throughput line derived from a [`Timing`].
pub fn report_throughput(name: &str, elements: u64, t: Timing) {
    let per_sec = elements as f64 / (t.median_ns / 1_000_000_000.0);
    println!("{name:<40} {:.2} M elements/s", per_sec / 1_000_000.0);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_sane_numbers() {
        let t = bench("noop", 1, 3, || 1u64 + 1);
        assert!(t.min_ns >= 0.0);
        assert!(t.median_ns >= t.min_ns);
        assert!(t.iters >= 1);
    }

    #[test]
    fn fmt_ns_scales() {
        assert!(fmt_ns(10.0).ends_with("ns"));
        assert!(fmt_ns(10_000.0).ends_with("µs"));
        assert!(fmt_ns(10_000_000.0).ends_with("ms"));
        assert!(fmt_ns(10_000_000_000.0).ends_with("s"));
    }
}
