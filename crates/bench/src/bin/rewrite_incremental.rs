//! Incremental re-rewriting gate (default build): primes the per-unit
//! rewrite cache on a >= 1 MB SPEC-like binary, then repeatedly dirties
//! a small set of patch sites (< 10% of the rewrite units) through the
//! emulator's dirty-region channel and refreshes the output with
//! `run_incremental`, comparing against a from-scratch full rewrite.
//!
//!     cargo run --release -p chimera-bench --bin rewrite_incremental
//!
//! Two acceptance bars, both hard:
//!
//!  * **Byte equality.** The incremental output must be bit-identical to
//!    the full rewrite — binary bytes, fault table, and statistics — and
//!    the `rewrite.units_reused`/`rewrite.units_redone` counters must
//!    reconcile exactly with the unit total.
//!  * **>= 5x refresh speedup** over a from-scratch rewrite when < 10%
//!    of the units are dirty. The expected margin is large (scan
//!    dominates a full rewrite and the incremental path reuses all of
//!    its analyses), so the bar does not need a timing-noise band and is
//!    not gated on hardware-thread count.
//!
//! Results land in `results/rewrite-incremental.json`.

use chimera_bench::harness::{bench, fmt_ns, Timing};
use chimera_emu::Memory;
use chimera_isa::ExtSet;
use chimera_rewrite::{
    default_workers, ebreak_patch, run, run_cached, run_incremental, ChbpEngine, DirtySpan, Mode,
    RewriteOptions,
};
use chimera_trace::Tracer;
use chimera_workloads::speclike::{generate, GenOptions, SPEC_PROFILES};
use std::io::Write;

fn main() {
    // Same workload as the rewrite_parallel gate: the smallest SPEC
    // profile over the 1 MB floor, generated at full scale.
    let profile = SPEC_PROFILES
        .iter()
        .filter(|p| p.code_mb >= 1.0)
        .min_by(|a, b| a.code_mb.total_cmp(&b.code_mb))
        .expect("SPEC table is non-empty");
    let bin = generate(
        profile,
        GenOptions {
            size_scale: 1.0,
            work_scale: 0.1,
            seed: 42,
        },
    );
    let code_bytes = bin.code_size();
    assert!(
        code_bytes >= 1024 * 1024,
        "gate needs a >= 1 MB code section, got {code_bytes}"
    );
    let workers = default_workers();
    println!(
        "workload: {} ({} code bytes, profile {:.2} MB, {workers} workers)",
        profile.name, code_bytes, profile.code_mb
    );

    let engine = ChbpEngine {
        target: ExtSet::RV64GC,
        opts: RewriteOptions {
            mode: Mode::Downgrade,
            ..Default::default()
        },
    };

    // Prime the cache and pin the reference output.
    let (primed, mut cache) = run_cached(&engine, &bin, workers, &Tracer::disabled()).unwrap();
    let full = run(&engine, &bin, workers, &Tracer::disabled()).unwrap();
    assert_eq!(
        primed.rewritten, full.rewritten,
        "cached run diverges from plain run"
    );
    let units = cache.unit_count() as u64;

    // The runtime mutation surface: the rewritten image loaded into a
    // bare memory. Dirty a fixed set of trampoline heads (~2% of the
    // units) — guaranteed to lie inside unit source ranges, so each
    // poke invalidates exactly the covering unit.
    let mut mem = Memory::new();
    for s in &primed.rewritten.binary.sections {
        mem.map_bytes(s.addr, s.data.clone(), s.perms, &s.name);
    }
    let stride = 50; // 1-in-50 trampolines => ~2% of the units dirty.
    let sites: Vec<u64> = primed
        .rewritten
        .fht
        .trampolines
        .iter()
        .step_by(stride)
        .copied()
        .collect();
    assert!(!sites.is_empty(), "SPEC workload must have patch sites");

    let mut watermark = mem.generation_watermark();
    let mut refresh = |mem: &mut Memory, tracer: &Tracer| {
        // Re-poke every site so each refresh sees fresh generations —
        // validation stamps make a consumed dirty report a no-op, which
        // would otherwise let later iterations measure the 0-dirty path.
        for &site in &sites {
            mem.poke_code(site, &ebreak_patch(4)).expect("poke site");
        }
        let dirty: Vec<DirtySpan> = mem
            .dirty_regions_since(watermark)
            .iter()
            .map(|d| DirtySpan {
                start: d.start,
                end: d.end,
                generation: d.generation,
            })
            .collect();
        watermark = mem.generation_watermark();
        run_incremental(&engine, &bin, &mut cache, &dirty, workers, tracer).unwrap()
    };

    // Correctness pass (traced): byte equality + counter reconciliation
    // + the < 10% dirty-fraction precondition for the speedup bar.
    let tracer = Tracer::enabled();
    let refreshed = refresh(&mut mem, &tracer);
    assert_eq!(
        refreshed.rewritten, full.rewritten,
        "incremental refresh diverged from the from-scratch rewrite"
    );
    let m = tracer.metrics().expect("enabled tracer has metrics");
    let reused = m.counter_value("rewrite.units_reused").unwrap_or(0);
    let redone = m.counter_value("rewrite.units_redone").unwrap_or(0);
    assert_eq!(reused + redone, units, "reuse counters must reconcile");
    assert!(redone >= 1, "the poked sites must dirty at least one unit");
    assert!(
        redone * 10 < units,
        "gate precondition: < 10% of units dirty (got {redone}/{units})"
    );
    println!(
        "correctness: bit-identical refresh, {redone}/{units} units redone \
         ({} dirty sites, counters reconcile)",
        sites.len()
    );

    let t_full = bench("rewrite_incremental/full rewrite", 60, 9, || {
        run(
            &engine,
            std::hint::black_box(&bin),
            workers,
            &Tracer::disabled(),
        )
        .unwrap()
    });
    let t_inc = bench("rewrite_incremental/refresh", 60, 9, || {
        refresh(&mut mem, &Tracer::disabled())
    });
    let speedup = t_full.median_ns / t_inc.median_ns;
    println!(
        "incremental refresh speedup: {speedup:.2}x (median {} -> {})",
        fmt_ns(t_full.median_ns),
        fmt_ns(t_inc.median_ns)
    );

    dump_json(
        profile.name,
        code_bytes,
        units,
        redone,
        workers,
        &t_full,
        &t_inc,
        speedup,
    );

    assert!(
        speedup >= 5.0,
        "incremental refresh must be >= 5x faster than a full rewrite with \
         < 10% of units dirty (got {speedup:.2}x)"
    );
    println!("PASS: >= 5x refresh at {redone}/{units} dirty units, bit-identical output");
}

#[allow(clippy::too_many_arguments)]
fn dump_json(
    name: &str,
    code_bytes: u64,
    units: u64,
    units_redone: u64,
    workers: usize,
    t_full: &Timing,
    t_inc: &Timing,
    speedup: f64,
) {
    std::fs::create_dir_all("results").unwrap();
    let mut f = std::fs::File::create("results/rewrite-incremental.json").unwrap();
    writeln!(
        f,
        "{{\n  \"workload\": \"{name}\",\n  \"code_bytes\": {code_bytes},\n  \
         \"units\": {units},\n  \"units_redone\": {units_redone},\n  \
         \"workers\": {workers},\n  \
         \"median_ns_full\": {:.0},\n  \"median_ns_incremental\": {:.0},\n  \
         \"speedup\": {speedup:.3},\n  \"bit_identical\": true\n}}",
        t_full.median_ns, t_inc.median_ns
    )
    .unwrap();
    println!("wrote results/rewrite-incremental.json");
}
