//! Regenerates Fig. 11: CPU time and end-to-end latency of FAM / Safer /
//! MELF / Chimera on an 8-core ISAX processor, extension-task share swept
//! 0–100%, for both input versions. Pass `--quick` for a fast smoke run.

use chimera::InputVersion;
use chimera_bench::{hetero_sweep, Scale, SYSTEMS};

fn main() {
    let scale = Scale::from_args();
    for (input, name) in [
        (InputVersion::Ext, "Extension Version (downgrading)"),
        (InputVersion::Base, "Base Version (upgrading)"),
    ] {
        println!("== Fig. 11 — {name}, {} tasks ==", scale.n_tasks);
        let sweeps: Vec<_> = SYSTEMS
            .iter()
            .map(|s| (s.name(), hetero_sweep(*s, input, scale)))
            .collect();

        println!("-- CPU time (cycles) --");
        print!("{:<8}", "ext%");
        for (n, _) in &sweeps {
            print!("{n:>14}");
        }
        println!();
        for i in 0..=10 {
            print!("{:<8}", format!("{}%", i * 10));
            for (_, pts) in &sweeps {
                print!("{:>14}", pts[i].cpu_time);
            }
            println!();
        }
        println!("-- End-to-end latency (cycles) --");
        print!("{:<8}", "ext%");
        for (n, _) in &sweeps {
            print!("{n:>14}");
        }
        println!();
        for i in 0..=10 {
            print!("{:<8}", format!("{}%", i * 10));
            for (_, pts) in &sweeps {
                print!("{:>14}", pts[i].latency);
            }
            println!();
        }
        println!();
    }
}
