//! Ablation study of CHBP's design choices (the knobs DESIGN.md calls
//! out): basic-block batching, exit-position shifting, and SMILE vs
//! trap-based entry trampolines — each measured on a vector-dense
//! SPEC-like program.

use chimera_isa::{Ext, ExtSet};
use chimera_kernel::{Process, RuntimeTables, Variant};
use chimera_rewrite::{chbp_rewrite, Mode, RewriteOptions};
use chimera_workloads::speclike::{generate, GenOptions, SPEC_PROFILES};

fn run(bin: &chimera_obj::Binary, opts: RewriteOptions) -> (f64, usize, usize) {
    let native = chimera_emu::run_binary(bin, u64::MAX / 2).expect("native");
    let rw = chbp_rewrite(bin, ExtSet::RV64GCV, opts).expect("rewrite");
    let variant = Variant {
        binary: rw.binary,
        tables: RuntimeTables {
            fht: Some(rw.fht),
            regen: None,
        },
    };
    let process = Process::new(vec![variant]);
    let m = chimera::measure(&process, ExtSet::RV64GCV, u64::MAX / 2).expect("run");
    assert_eq!(m.exit_code, native.exit_code);
    (
        m.cycles as f64 / native.stats.cycles as f64 - 1.0,
        rw.stats.dead_reg_not_found_shift,
        rw.stats.dead_reg_not_found_traditional,
    )
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (size_scale, work_scale) = if quick {
        (1.0 / 512.0, 0.4)
    } else {
        (1.0 / 32.0, 1.5)
    };
    let bin = generate(
        &SPEC_PROFILES[4], // cactuBSSN-like: vector-dense.
        GenOptions {
            size_scale,
            work_scale,
            seed: 42,
        },
    );
    let base = RewriteOptions {
        mode: Mode::EmptyPatch(Ext::V),
        ..Default::default()
    };

    println!("== CHBP ablations (cactuBSSN-like, empty patching) ==");
    println!(
        "{:<34}{:>12}{:>22}",
        "configuration", "overhead", "no-dead (ours/trad)"
    );

    let configs: [(&str, RewriteOptions); 4] = [
        ("CHBP (batching + shifting)", base),
        (
            "no batching",
            RewriteOptions {
                batching: false,
                ..base
            },
        ),
        (
            "no exit-position shifting",
            RewriteOptions {
                exit_shifting: false,
                ..base
            },
        ),
        (
            "trap entries (strawman)",
            RewriteOptions {
                force_trap_entries: true,
                ..base
            },
        ),
    ];
    for (name, opts) in configs {
        let (ovh, ours, trad) = run(&bin, opts);
        println!(
            "{:<34}{:>11.1}%{:>22}",
            name,
            ovh * 100.0,
            format!("{ours}/{trad}")
        );
    }
}
