//! Quick decode-cache throughput check (default build, no feature flags):
//! runs a straight-line-heavy scalar workload with the basic-block decode
//! cache on and off, asserts bit-identical architectural results and cycle
//! accounting, and reports the dynamic-instruction throughput ratio.
//!
//!     cargo run --release -p chimera-bench --bin decode_cache
//!
//! The acceptance bar for the cache is a >= 2x dynamic-instruction
//! throughput improvement on this workload (release build). The result
//! equality check is a hard assert; the throughput bar hard-fails only
//! below 1.5x so timing noise on shared CI runners can't flake the gate
//! (quiet hardware measures ~2.9x), and warns between 1.5x and 2x.

use chimera_bench::harness::{bench, fmt_ns, report_throughput};
use chimera_isa::ExtSet;
use chimera_obj::{assemble, AsmOptions};

fn main() {
    // Straight-line-dominated: a long unrolled body re-entered from one
    // backward branch, so nearly every retired instruction is served from
    // a cached block after the first iteration.
    let mut src = String::from(
        "
        _start:
            li t0, 4000
            li a0, 0
            li a1, 7
        loop:
    ",
    );
    for _ in 0..32 {
        src.push_str("        add a0, a0, a1\n");
        src.push_str("        xor a0, a0, t0\n");
    }
    src.push_str(
        "
            addi t0, t0, -1
            bnez t0, loop
            li a7, 93
            ecall
        ",
    );
    let bin = assemble(&src, AsmOptions::default()).unwrap();

    let fuel = u64::MAX / 2;
    let cached = chimera_emu::run_binary_with(&bin, ExtSet::RV64GCV, fuel, true).unwrap();
    let uncached = chimera_emu::run_binary_with(&bin, ExtSet::RV64GCV, fuel, false).unwrap();
    assert_eq!(
        cached, uncached,
        "decode cache must not change results or cycle accounting"
    );
    println!(
        "workload: {} dynamic insts, {} simulated cycles (identical cache on/off)",
        cached.stats.instret, cached.stats.cycles
    );

    let insts = cached.stats.instret;
    let t_on = bench("decode_cache/straight_line (cache on)", 60, 9, || {
        chimera_emu::run_binary_with(std::hint::black_box(&bin), ExtSet::RV64GCV, fuel, true)
            .unwrap()
    });
    report_throughput("  -> dynamic insts/s", insts, t_on);
    let t_off = bench("decode_cache/straight_line (cache off)", 60, 9, || {
        chimera_emu::run_binary_with(std::hint::black_box(&bin), ExtSet::RV64GCV, fuel, false)
            .unwrap()
    });
    report_throughput("  -> dynamic insts/s", insts, t_off);

    let speedup = t_off.median_ns / t_on.median_ns;
    println!(
        "decode-cache speedup: {speedup:.2}x (median {} -> {})",
        fmt_ns(t_off.median_ns),
        fmt_ns(t_on.median_ns)
    );
    assert!(
        speedup >= 1.5,
        "decode cache speedup collapsed: target is >= 2x on a straight-line \
         workload, hard floor 1.5x to absorb shared-runner timing noise \
         (got {speedup:.2}x)"
    );
    if speedup >= 2.0 {
        println!("PASS: >= 2x with identical cycle accounting");
    } else {
        println!(
            "WARN: {speedup:.2}x is under the 2x target (within the 1.5x \
             noise floor); rerun on quiet hardware if this persists"
        );
    }
}
