//! Regenerates Table 3: code size, extension-instruction share, exit
//! trampoline count, and dead-register-not-found statistics (CHBP's
//! exit-position shifting vs traditional liveness).

use chimera_bench::{table3, Scale};

fn main() {
    let scale = Scale::from_args();
    println!("== Table 3 — CHBP static rewriting statistics ==");
    println!(
        "{:<14}{:>12}{:>10}{:>12}{:>18}{:>8}{:>8}",
        "binary", "code (KB)", "ext %", "exit tramp", "no-dead (ours/trad)", "SMILE", "traps"
    );
    for row in table3(scale) {
        println!(
            "{:<14}{:>12.1}{:>9.2}%{:>12}{:>18}{:>8}{:>8}",
            row.name,
            row.code_size as f64 / 1024.0,
            row.ext_share * 100.0,
            row.exit_trampolines,
            format!("{}/{}", row.dead_not_found.0, row.dead_not_found.1),
            row.smile,
            row.traps
        );
    }
}
