//! Regenerates Fig. 13: performance degradation of strawman / Safer /
//! ARMore / CHBP relative to the original binary, over the 17 SPEC-like
//! benchmarks (empty-patching methodology of §6.2).

use chimera_bench::{fig13, pct, Scale, REWRITERS};

fn main() {
    let scale = Scale::from_args();
    println!("== Fig. 13 — performance degradation vs original (empty patching) ==");
    print!("{:<14}", "benchmark");
    for rk in REWRITERS {
        print!("{:>12}", rk.name());
    }
    println!();
    let rows = fig13(scale);
    let mut sums = [0.0f64; 4];
    for row in &rows {
        print!("{:<14}", row.name);
        for (i, o) in row.overhead.iter().enumerate() {
            print!("{:>12}", pct(*o));
            sums[i] += o;
        }
        println!();
    }
    print!("{:<14}", "geomean-ish");
    for s in sums {
        print!("{:>12}", pct(s / rows.len() as f64));
    }
    println!();
}
