//! Host-code JIT-tier gate: throughput over the micro-op engine, with
//! hard transparency, reconciliation and determinism asserts.
//!
//!     cargo run --release -p chimera-bench --bin jit_tier
//!
//! For each gate workload the four front ends (reference interpreter,
//! decode-cache interpreter, micro-op engine, JIT) must produce
//! bit-identical [`chimera_emu::RunResult`]s — exit code, stdout, final
//! registers, every stats counter including simulated cycles — the JIT
//! counters must reconcile against the interpreter's dispatcher hits
//! (`hits_interp == hits_jit + chained_jit + jitted`), two JIT runs must
//! be bit-identical (counters included), and compiled traces must
//! actually carry the run (`jitted > 0`). All hard asserts.
//!
//! The acceptance bar for the tier is a >= 2x dynamic-instruction
//! throughput improvement over the *micro-op engine* (geomean across the
//! gate workloads, release build), measured as best-of-alternating
//! batches (see [`time_pair`]). The bar hard-fails only below 1.5x so
//! timing noise on shared CI runners can't flake the gate, and warns
//! between 1.5x and 2x. Results land in `results/jit-tier.json`.
//!
//! On hosts without executable pages ([`chimera_emu::jit_available`] is
//! false) the gate degrades to transparency-only: the four-way equality
//! and determinism asserts still run (Jit mode then has engine
//! semantics), the speedup gate is skipped, and the JSON records
//! `"jit_available": false`.

use chimera_bench::harness::fmt_ns;
use chimera_emu::ExecMode;
use chimera_isa::ExtSet;
use chimera_obj::Binary;
use chimera_workloads::speclike::{generate, GenOptions, SPEC_PROFILES};
use std::io::Write as _;
use std::time::Instant;

const FUEL: u64 = u64::MAX / 2;

/// The same diverse speclike subset the exec_engine gate times:
/// indirect-heavy, large-code, vector-leaning and balanced profiles.
const GATE_WORKLOADS: &[&str] = &["perlbench_r", "gcc_r", "cactuBSSN_r", "imagick_r"];

struct Row {
    name: &'static str,
    insts: u64,
    jitted: u64,
    min_ns_jit: f64,
    min_ns_engine: f64,
    speedup: f64,
}

/// Target duration of one timed batch.
const BATCH_MS: u64 = 25;
/// Alternating jit/engine batch pairs per workload.
const ROUNDS: usize = 10;

/// One timed batch: ns per run.
fn batch_ns(bin: &Binary, mode: ExecMode, iters: u64) -> f64 {
    let t0 = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(run_mode(std::hint::black_box(bin), mode));
    }
    t0.elapsed().as_nanos() as f64 / iters as f64
}

/// Times the two modes in *alternating* batches and compares fastest
/// batches. Shared virtualized runners have one-sided noise (steal time
/// only ever slows a batch down) that drifts on the scale of a whole
/// measurement phase; interleaving keeps both modes exposed to the same
/// drift, and min-of-batches estimates the unperturbed speed of each.
fn time_pair(bin: &Binary) -> (f64, f64) {
    let budget = (BATCH_MS * 1_000_000) as f64;
    let calibrate = |mode| {
        let once = batch_ns(bin, mode, 1);
        ((budget / once.max(1.0)).ceil() as u64).max(1)
    };
    let iters_jit = calibrate(ExecMode::Jit);
    let iters_engine = calibrate(ExecMode::Engine);
    let mut best_jit = f64::INFINITY;
    let mut best_engine = f64::INFINITY;
    for _ in 0..ROUNDS {
        best_jit = best_jit.min(batch_ns(bin, ExecMode::Jit, iters_jit));
        best_engine = best_engine.min(batch_ns(bin, ExecMode::Engine, iters_engine));
    }
    (best_jit, best_engine)
}

fn run_mode(bin: &Binary, mode: ExecMode) -> (chimera_emu::RunResult, chimera_emu::CacheStats) {
    let (mut cpu, mut mem) = chimera_emu::boot(bin, ExtSet::RV64GCV);
    cpu.set_mode(mode);
    let r = chimera_emu::run_cpu(&mut cpu, &mut mem, FUEL).expect("workload exits cleanly");
    (r, cpu.cache.stats)
}

fn main() {
    let jit_available = chimera_emu::jit_available();
    if !jit_available {
        println!(
            "NOTE: no executable pages on this host — running the \
             transparency gate only (Jit mode has engine semantics here)"
        );
    }

    let mut rows = Vec::new();
    for profile in SPEC_PROFILES
        .iter()
        .filter(|p| GATE_WORKLOADS.contains(&p.name))
    {
        // Millions of retired instructions per run: throughput is a
        // steady-state property, and the tiering warm-up (interpret ->
        // engine -> compile) must be amortized the way it would be in a
        // real process, not hidden by a tiny run.
        let bin = generate(
            profile,
            GenOptions {
                size_scale: 1.0 / 256.0,
                work_scale: 64.0,
                seed: 11,
            },
        );

        // Transparency (hard): all four front ends bit-identical.
        let (reference, _) = run_mode(&bin, ExecMode::Reference);
        let (interp, ci) = run_mode(&bin, ExecMode::Interpreter);
        let (engine, _) = run_mode(&bin, ExecMode::Engine);
        let (jit, cj) = run_mode(&bin, ExecMode::Jit);
        assert_eq!(reference, interp, "{}: interpreter diverged", profile.name);
        assert_eq!(reference, engine, "{}: engine diverged", profile.name);
        assert_eq!(reference, jit, "{}: jit diverged", profile.name);

        // Counter reconciliation (hard): every in-trace chain-entry pass
        // replaces exactly one dispatcher hit, and the decode-cache
        // behaviour underneath is untouched.
        assert_eq!(
            ci.hits,
            cj.hits + cj.chained + cj.jitted,
            "{}: hits must reconcile: {ci:?} vs {cj:?}",
            profile.name
        );
        assert_eq!(
            (ci.misses, ci.blocks_built, ci.invalidations),
            (cj.misses, cj.blocks_built, cj.invalidations),
            "{}: cache counters diverged",
            profile.name
        );
        if jit_available {
            assert!(cj.jit_execs > 0, "{}: jit never executed", profile.name);
            assert!(
                cj.jitted > 0,
                "{}: compiled traces never chained — the timed runs would \
                 not actually measure the JIT",
                profile.name
            );
        }

        // Determinism (hard): a repeated JIT run is bit-identical, cache
        // counters included.
        let (jit2, cj2) = run_mode(&bin, ExecMode::Jit);
        assert_eq!(jit, jit2, "{}: jit run not deterministic", profile.name);
        assert_eq!(cj, cj2, "{}: jit counters not deterministic", profile.name);

        let insts = jit.stats.instret;
        println!(
            "jit_tier/{}: {} dynamic insts, {} simulated cycles, \
             {} jitted chain passes, {} trace execs",
            profile.name, insts, jit.stats.cycles, cj.jitted, cj.jit_execs
        );
        if !jit_available {
            continue;
        }
        let (min_ns_jit, min_ns_engine) = time_pair(&bin);
        let speedup = min_ns_engine / min_ns_jit;
        println!(
            "  -> speedup {speedup:.2}x (best batches: {} -> {})",
            fmt_ns(min_ns_engine),
            fmt_ns(min_ns_jit)
        );
        rows.push(Row {
            name: profile.name,
            insts,
            jitted: cj.jitted,
            min_ns_jit,
            min_ns_engine,
            speedup,
        });
    }

    if !jit_available {
        dump_json(&[], 0.0, false);
        println!("PASS (transparency only): bit-identical results in all modes");
        return;
    }

    let geomean = (rows.iter().map(|r| r.speedup.ln()).sum::<f64>() / rows.len() as f64).exp();
    println!("jit-tier speedup geomean: {geomean:.2}x over the micro-op engine");

    dump_json(&rows, geomean, true);

    assert!(
        geomean >= 1.5,
        "jit speedup collapsed: target is >= 2x over the micro-op engine, \
         hard floor 1.5x to absorb shared-runner timing noise \
         (got {geomean:.2}x)"
    );
    if geomean >= 2.0 {
        println!("PASS: >= 2x geomean with bit-identical results in all modes");
    } else {
        println!(
            "WARN: {geomean:.2}x is under the 2x target (within the 1.5x \
             noise floor); rerun on quiet hardware if this persists"
        );
    }
}

fn dump_json(rows: &[Row], geomean: f64, jit_available: bool) {
    std::fs::create_dir_all("results").unwrap();
    let mut f = std::fs::File::create("results/jit-tier.json").unwrap();
    writeln!(f, "{{\n  \"jit_available\": {jit_available},").unwrap();
    writeln!(f, "  \"workloads\": [").unwrap();
    for (i, r) in rows.iter().enumerate() {
        writeln!(
            f,
            "    {{\"name\": \"{}\", \"dynamic_insts\": {}, \"jitted\": {}, \
             \"min_ns_jit\": {:.0}, \"min_ns_engine\": {:.0}, \
             \"speedup\": {:.3}}}{}",
            r.name,
            r.insts,
            r.jitted,
            r.min_ns_jit,
            r.min_ns_engine,
            r.speedup,
            if i + 1 == rows.len() { "" } else { "," }
        )
        .unwrap();
    }
    writeln!(
        f,
        "  ],\n  \"geomean_speedup\": {geomean:.3},\n  \"deterministic\": true\n}}"
    )
    .unwrap();
    println!("wrote results/jit-tier.json");
}
