//! Regenerates Fig. 12: the proportion of extension tasks accelerated by
//! the vector extension, for both input versions.

use chimera::InputVersion;
use chimera_bench::{hetero_sweep, pct, Scale, SYSTEMS};

fn main() {
    let scale = Scale::from_args();
    for (input, name) in [
        (InputVersion::Ext, "(a) Extension Version"),
        (InputVersion::Base, "(b) Base Version"),
    ] {
        println!("== Fig. 12 {name} — accelerated extension tasks ==");
        let sweeps: Vec<_> = SYSTEMS
            .iter()
            .map(|s| (s.name(), hetero_sweep(*s, input, scale)))
            .collect();
        print!("{:<8}", "ext%");
        for (n, _) in &sweeps {
            print!("{n:>10}");
        }
        println!();
        for i in 1..=10 {
            print!("{:<8}", format!("{}%", i * 10));
            for (_, pts) in &sweeps {
                print!("{:>10}", pct(pts[i].accelerated));
            }
            println!();
        }
        println!();
    }
}
