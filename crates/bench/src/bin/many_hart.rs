//! Many-hart determinism + scale gate (default build): runs the standard
//! heterogeneous scenario — native RVV harts, FAM harts migrating
//! mid-run, scalar harts, trap-entry and SMILE rewritten harts, and
//! communicator pairs blocking on the event queue — at 64 and 256 guest
//! harts over 1/2/4/8 logical host workers, and hard-asserts that every
//! worker count produces a **bit-identical** [`ManyHartResult`] and
//! trace-counter snapshot.
//!
//!     cargo run --release -p chimera-bench --bin many_hart
//!
//! Worker counts are *logical*: the fiber pool multiplexes N harts over M
//! workers whatever the host's core count, so this gate never skips — a
//! 1-hw-thread CI host still exercises (and must reproduce) the 8-worker
//! schedule. Aggregate simulated IPS (guest instructions retired per
//! wall-clock second, all harts summed) and per-worker-count checksums
//! land in `results/many-hart.json`.

use chimera_kernel::ManyHartResult;
use chimera_testutil::{run_many_hart_scenario, ManyHartScenario};
use std::collections::BTreeMap;
use std::io::Write;
use std::time::Instant;

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];
const HART_COUNTS: [usize; 2] = [64, 256];
/// Small enough that every long-running hart is suspended and resumed
/// many times per run (the whole point of the gate), large enough to keep
/// scheduler overhead from dominating. Odd, so slice boundaries walk
/// through the guest loops rather than aligning with them.
const QUANTUM: u64 = 97;

struct Row {
    workers: usize,
    wall_ns: f64,
    sim_ips: f64,
    checksum: u64,
}

fn reconcile(n: usize, workers: usize, r: &ManyHartResult, counters: &BTreeMap<String, u64>) {
    let counter = |name: &str| counters.get(name).copied().unwrap_or(0);
    assert_eq!(
        r.exited(),
        n,
        "{n} harts / {workers} workers: every hart must exit: {:?}",
        r.first_failure()
    );
    // The result's aggregates must reconcile exactly with the `many.*`
    // trace counters recorded through the per-hart tracer streams.
    assert_eq!(counter("many.migrations"), r.migrations, "{n}/{workers}");
    assert_eq!(
        counter("many.delivered_timer"),
        r.delivered.0,
        "{n}/{workers}"
    );
    assert_eq!(
        counter("many.delivered_ipi"),
        r.delivered.1,
        "{n}/{workers}"
    );
    assert_eq!(
        counter("many.delivered_wakeup"),
        r.delivered.2,
        "{n}/{workers}"
    );
    assert_eq!(counter("many.events_dropped"), 0, "{n}/{workers}");
    // Scenario shape: one FAM migration per `id % 4 == 1` hart; one IPI
    // per communicator round and one timer per communicator.
    let quarter = (n / 4) as u64;
    assert_eq!(r.migrations, quarter, "{n}/{workers}: FAM migrations");
    assert_eq!(r.delivered.1, quarter * 3, "{n}/{workers}: IPI rounds");
    assert_eq!(r.delivered.0, quarter, "{n}/{workers}: communicator timers");
}

fn main() {
    let scenario = ManyHartScenario::new();
    let mut sections: Vec<(usize, Vec<Row>, u64, u64)> = Vec::new();

    for &n in &HART_COUNTS {
        let mut rows = Vec::new();
        let mut baseline: Option<(ManyHartResult, BTreeMap<String, u64>)> = None;
        for &workers in &WORKER_COUNTS {
            let t0 = Instant::now();
            let (r, counters) = run_many_hart_scenario(&scenario, n, workers, QUANTUM);
            let wall_ns = t0.elapsed().as_nanos() as f64;
            reconcile(n, workers, &r, &counters);
            let sim_ips = r.retired as f64 / (wall_ns / 1e9);
            println!(
                "{n:>4} harts / {workers} workers: {:>12} retired, {} slots, \
                 {} migrations, {:>7.2} M sim-IPS, checksum {:#018x}",
                r.retired,
                r.slots,
                r.migrations,
                sim_ips / 1e6,
                r.checksum
            );
            rows.push(Row {
                workers,
                wall_ns,
                sim_ips,
                checksum: r.checksum,
            });
            match &baseline {
                None => baseline = Some((r, counters)),
                Some((b, bc)) => {
                    assert_eq!(
                        &r, b,
                        "{n} harts: {workers}-worker run diverged from 1-worker"
                    );
                    assert_eq!(
                        &counters, bc,
                        "{n} harts: {workers}-worker trace counters diverged"
                    );
                }
            }
        }
        let (b, _) = baseline.expect("at least one worker count ran");
        println!(
            "{n:>4} harts: workers 1/2/4/8 bit-identical \
             ({} retired, {} migrations, {} IPIs)",
            b.retired, b.migrations, b.delivered.1
        );
        sections.push((n, rows, b.retired, b.migrations));
    }

    dump_json(&sections);
    println!("PASS: 64- and 256-hart heterogeneous runs bit-identical across 1/2/4/8 workers");
}

fn dump_json(sections: &[(usize, Vec<Row>, u64, u64)]) {
    std::fs::create_dir_all("results").unwrap();
    let mut f = std::fs::File::create("results/many-hart.json").unwrap();
    let hw_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    writeln!(f, "{{").unwrap();
    writeln!(f, "  \"quantum\": {QUANTUM},").unwrap();
    writeln!(f, "  \"hw_threads\": {hw_threads},").unwrap();
    writeln!(f, "  \"deterministic\": true,").unwrap();
    writeln!(f, "  \"runs\": [").unwrap();
    for (si, (n, rows, retired, migrations)) in sections.iter().enumerate() {
        writeln!(f, "    {{").unwrap();
        writeln!(f, "      \"harts\": {n},").unwrap();
        writeln!(f, "      \"retired\": {retired},").unwrap();
        writeln!(f, "      \"migrations\": {migrations},").unwrap();
        writeln!(f, "      \"per_worker_count\": [").unwrap();
        for (ri, row) in rows.iter().enumerate() {
            writeln!(
                f,
                "        {{\"workers\": {}, \"wall_ns\": {:.0}, \"sim_ips\": {:.0}, \
                 \"checksum\": \"{:#018x}\"}}{}",
                row.workers,
                row.wall_ns,
                row.sim_ips,
                row.checksum,
                if ri + 1 < rows.len() { "," } else { "" }
            )
            .unwrap();
        }
        writeln!(f, "      ]").unwrap();
        writeln!(
            f,
            "    }}{}",
            if si + 1 < sections.len() { "," } else { "" }
        )
        .unwrap();
    }
    writeln!(f, "  ]").unwrap();
    writeln!(f, "}}").unwrap();
    println!("wrote results/many-hart.json");
}
