//! Parallel-rewrite determinism + throughput gate (default build):
//! CHBP-rewrites a >= 1 MB SPEC-like binary through the pass pipeline at
//! 1/2/4/8 transform workers, asserts the outputs are bit-identical
//! (binary bytes, fault table, and statistics), and reports the rewrite
//! throughput scaling of 8 workers over 1.
//!
//!     cargo run --release -p chimera-bench --bin rewrite_parallel
//!
//! The acceptance bar is >= 2x rewrite throughput at 8 workers vs 1
//! (release build). The determinism matrix is a hard assert on **every**
//! host whatever its core count — worker counts are logical, so a
//! 1-hw-thread runner still exercises and must reproduce the 8-worker
//! rewrite. Only the throughput bar is host-dependent: it hard-fails
//! below 1.5x so timing noise can't flake the gate (mirroring the
//! decode_cache gate), warns between 1.5x and 2x, and is skipped —
//! *speedup assertion only, nothing else* — on hosts with fewer than 8
//! hardware threads, where scaling to 8 workers cannot be measured. The
//! JSON dump records `speedup_asserted` alongside the host's parallelism
//! so skipped-bar runs are machine-distinguishable.
//! Results land in `results/rewrite-parallel.json`.

use chimera_bench::harness::{bench, fmt_ns, Timing};
use chimera_isa::ExtSet;
use chimera_rewrite::{chbp_rewrite_with, Mode, RewriteOptions, Rewritten};
use chimera_trace::Tracer;
use chimera_workloads::speclike::{generate, GenOptions, SPEC_PROFILES};
use std::io::Write;

fn rewrite(bin: &chimera_obj::Binary, workers: usize) -> Rewritten {
    chbp_rewrite_with(
        bin,
        ExtSet::RV64GC,
        RewriteOptions {
            mode: Mode::Downgrade,
            ..Default::default()
        },
        workers,
        &Tracer::disabled(),
    )
    .unwrap()
}

fn main() {
    // The smallest SPEC profile over the 1 MB floor, generated at full
    // scale: a real rewrite-sized input without making the gate crawl.
    let profile = SPEC_PROFILES
        .iter()
        .filter(|p| p.code_mb >= 1.0)
        .min_by(|a, b| a.code_mb.total_cmp(&b.code_mb))
        .expect("SPEC table is non-empty");
    let bin = generate(
        profile,
        GenOptions {
            size_scale: 1.0,
            work_scale: 0.1,
            seed: 42,
        },
    );
    let code_bytes = bin.code_size();
    assert!(
        code_bytes >= 1024 * 1024,
        "gate needs a >= 1 MB code section, got {code_bytes}"
    );
    println!(
        "workload: {} ({} code bytes, profile {:.2} MB)",
        profile.name, code_bytes, profile.code_mb
    );

    // Determinism: every worker count must produce bit-identical output.
    let baseline = rewrite(&bin, 1);
    for workers in [2, 4, 8] {
        let rw = rewrite(&bin, workers);
        assert_eq!(
            rw.binary, baseline.binary,
            "{workers}-worker rewrite bytes diverge from sequential"
        );
        assert_eq!(
            rw.fht, baseline.fht,
            "{workers}-worker fault table diverges from sequential"
        );
        assert_eq!(
            rw.stats, baseline.stats,
            "{workers}-worker stats diverge from sequential"
        );
    }
    println!(
        "determinism: workers 1/2/4/8 bit-identical ({} target bytes, {} smiles, {} trap entries)",
        baseline.stats.target_section_size,
        baseline.stats.smile_trampolines,
        baseline.stats.trap_entries
    );

    let t_1 = bench("rewrite_parallel/chbp (1 worker)", 60, 9, || {
        rewrite(std::hint::black_box(&bin), 1)
    });
    let t_8 = bench("rewrite_parallel/chbp (8 workers)", 60, 9, || {
        rewrite(std::hint::black_box(&bin), 8)
    });
    let speedup = t_1.median_ns / t_8.median_ns;
    let hw_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "rewrite-parallel speedup: {speedup:.2}x (median {} -> {}, {hw_threads} hw threads)",
        fmt_ns(t_1.median_ns),
        fmt_ns(t_8.median_ns)
    );

    // Everything above this point ran and hard-asserted on every host;
    // the only thing a small host skips is the speedup bar itself.
    let speedup_asserted = hw_threads >= 8;
    dump_json(
        profile.name,
        code_bytes,
        hw_threads,
        &t_1,
        &t_8,
        speedup,
        speedup_asserted,
    );

    if !speedup_asserted {
        println!(
            "SKIP (speedup assertion only): the throughput bar needs 8 \
             hardware threads to be meaningful (host has {hw_threads}); \
             determinism across 1/2/4/8 workers was hard-asserted above"
        );
        return;
    }
    assert!(
        speedup >= 1.5,
        "parallel rewrite speedup collapsed: target is >= 2x at 8 workers on \
         a >= 1 MB binary, hard floor 1.5x to absorb shared-runner timing \
         noise (got {speedup:.2}x)"
    );
    if speedup >= 2.0 {
        println!("PASS: >= 2x at 8 workers with bit-identical output");
    } else {
        println!(
            "WARN: {speedup:.2}x is under the 2x target (within the 1.5x \
             noise floor); rerun on quiet hardware if this persists"
        );
    }
}

fn dump_json(
    name: &str,
    code_bytes: u64,
    hw_threads: usize,
    t_1: &Timing,
    t_8: &Timing,
    speedup: f64,
    speedup_asserted: bool,
) {
    std::fs::create_dir_all("results").unwrap();
    let mut f = std::fs::File::create("results/rewrite-parallel.json").unwrap();
    writeln!(
        f,
        "{{\n  \"workload\": \"{name}\",\n  \"code_bytes\": {code_bytes},\n  \
         \"hw_threads\": {hw_threads},\n  \
         \"median_ns_1_worker\": {:.0},\n  \"median_ns_8_workers\": {:.0},\n  \
         \"speedup\": {speedup:.3},\n  \"speedup_asserted\": {speedup_asserted},\n  \
         \"deterministic\": true\n}}",
        t_1.median_ns, t_8.median_ns
    )
    .unwrap();
    println!("wrote results/rewrite-parallel.json");
}
