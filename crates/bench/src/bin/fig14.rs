//! Regenerates Fig. 14: OpenBLAS-style kernel acceleration ratios vs
//! thread count, relative to FAM Ext., plus the (e) scalability series
//! with `--scalability`.

use chimera_bench::{fig14_kernel, Scale};
use chimera_workloads::blas::BlasKind;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scalability = std::env::args().any(|a| a == "--scalability");
    let _ = Scale::from_args();
    let size = if quick { 12 } else { 24 };
    if scalability {
        // Fig. 14e: sgemm on the 64-core SG2042 (32 base + 32 ext).
        println!("== Fig. 14e — sgemm scalability (64-core, 32+32) ==");
        println!(
            "{:<8}{:>10}{:>10}{:>10}{:>10}",
            "threads", "FAM Ext.", "FAM Base", "MELF", "Chimera"
        );
        let threads: &[usize] = if quick {
            &[16, 32]
        } else {
            &[16, 24, 32, 40, 48, 56, 64]
        };
        for p in fig14_kernel(BlasKind::Sgemm, size * 2, threads, 32, 32) {
            println!(
                "{:<8}{:>10.2}{:>10.2}{:>10.2}{:>10.2}",
                p.threads, p.ratios[0], p.ratios[1], p.ratios[2], p.ratios[3]
            );
        }
        return;
    }
    let threads: &[usize] = if quick { &[2, 8] } else { &[2, 4, 6, 8] };
    for kind in [
        BlasKind::Dgemm,
        BlasKind::Sgemm,
        BlasKind::Dgemv,
        BlasKind::Sgemv,
    ] {
        println!(
            "== Fig. 14 — OpenBLAS {} (ratios vs FAM Ext.) ==",
            kind.name()
        );
        println!(
            "{:<8}{:>10}{:>10}{:>10}{:>10}",
            "threads", "FAM Ext.", "FAM Base", "MELF", "Chimera"
        );
        for p in fig14_kernel(kind, size, threads, 4, 4) {
            println!(
                "{:<8}{:>10.2}{:>10.2}{:>10.2}{:>10.2}",
                p.threads, p.ratios[0], p.ratios[1], p.ratios[2], p.ratios[3]
            );
        }
        println!();
    }
}
