//! Process-churn gate: O(µs) pooled spawn + 1000-guest churn.
//!
//!     cargo run --release -p chimera-bench --bin process_churn
//!
//! Three phases:
//!
//! 1. **Spawn latency** — spawn→first-retired-instruction, min over
//!    interleaved samples, in three configurations: *cold* (a fresh
//!    [`SharedVariantCache`] checkout that pays the full rewrite, then an
//!    eager [`Process::load`]), *cold-no-rewrite* (warm checkout, eager
//!    load — isolates the instantiation cost from the rewrite cost), and
//!    *warm pool* ([`ProcessPool::spawn`] on a recycled copy-on-write
//!    slot). Gate: warm ≥ 5x faster than cold (hard floor 5x/1.5 — the
//!    1.5x noise allowance of the other latency gates).
//! 2. **Churn** — N=1000 concurrent pooled guests through the
//!    [`ManyHartKernel`], three rounds of spawn → run → recycle on ONE
//!    pool. Every round must be bit-identical to the first (recycled
//!    slots are indistinguishable from fresh ones), every slot must
//!    recycle (zero discards), and sustained processes/sec is reported.
//! 3. **Isolation** — one holder of the shared variant self-modifies and
//!    re-rewrites through its private cache; the gate hard-fails unless
//!    the other holder and the shared template stay untouched (zero
//!    cross-process invalidations).
//!
//! Results land in `results/process-churn.json`.

use chimera_bench::harness::fmt_ns;
use chimera_isa::ExtSet;
use chimera_kernel::{
    ManyHartConfig, ManyHartKernel, ManyHartResult, Process, ProcessPool, RuntimeTables, Variant,
};
use chimera_obj::{assemble, AsmOptions, Binary, DEFAULT_STACK_SIZE};
use chimera_rewrite::{run_incremental, ChbpEngine, DirtySpan, RewriteOptions, SharedVariantCache};
use chimera_trace::{TraceEvent, Tracer};
use std::io::Write;
use std::time::Instant;

const GUESTS: usize = 1000;
const ROUNDS: usize = 3;
const WORKERS: usize = 4;
const COLD_SAMPLES: usize = 12;
const WARM_SAMPLES: usize = 256;
/// Target speedup of a warm pooled spawn over a cold spawn, and the noise
/// allowance dividing it down to the hard floor.
const TARGET_SPEEDUP: f64 = 5.0;
const NOISE_ALLOWANCE: f64 = 1.5;

/// The churn guest: dirties its stack and `.data`, runs vector code (so
/// the CHBP rewrite is non-trivial), exits `14 + hart_id`.
const GUEST: &str = "
    .data
    buf: .dword 2
         .dword 3
         .dword 4
         .dword 5
    acc: .dword 0
    .text
    _start:
        li a7, 0x7a00       # HART_ID
        ecall
        mv s0, a0
        addi sp, sp, -32
        sd s0, 0(sp)
        sd s0, 8(sp)
        li t0, 4
        vsetvli t1, t0, e64, m1, ta, ma
        la a0, buf
        vle64.v v1, (a0)
        vmv.v.i v2, 0
        vredsum.vs v3, v1, v2
        vmv.x.s t2, v3
        la a1, acc
        sd t2, 0(a1)
        ld t3, 0(sp)
        add a0, t2, t3
        addi sp, sp, 32
        li a7, 93
        ecall
";

fn engine() -> ChbpEngine {
    ChbpEngine {
        target: ExtSet::RV64GC,
        opts: RewriteOptions::default(),
    }
}

fn to_variant(handle: &chimera_rewrite::VariantHandle) -> Variant {
    Variant {
        binary: handle.rewritten().binary.clone(),
        tables: RuntimeTables {
            fht: Some(handle.rewritten().fht.clone()),
            regen: handle.regen().cloned(),
        },
    }
}

/// Spawn→first-instruction latencies (ns): cold (full rewrite + eager
/// load), cold-no-rewrite (shared checkout + eager load), warm pool.
fn latency_phase(bin: &Binary) -> (f64, f64, f64) {
    let disabled = Tracer::disabled();
    let eng = engine();

    // Cold: every sample pays the rewrite (fresh cache) and the eager
    // per-section copy + stack zeroing of Process::load.
    let mut cold_min = f64::INFINITY;
    for _ in 0..COLD_SAMPLES {
        let shared = SharedVariantCache::new();
        let t0 = Instant::now();
        let handle = shared.checkout(&eng, bin, 0, 1, &disabled).unwrap();
        let process = Process::new(vec![to_variant(&handle)]);
        let (mut cpu, mut mem, _) = process.load(ExtSet::RV64GC).unwrap();
        let _ = cpu.run(&mut mem, 1);
        cold_min = cold_min.min(t0.elapsed().as_nanos() as f64);
        assert!(cpu.stats.instret >= 1, "first instruction retired");
    }

    // Cold-no-rewrite: the shared cache already holds the variant; the
    // sample still instantiates memory eagerly.
    let shared = SharedVariantCache::new();
    let _ = shared.checkout(&eng, bin, 0, 1, &disabled).unwrap();
    let mut norewrite_min = f64::INFINITY;
    for _ in 0..WARM_SAMPLES {
        let t0 = Instant::now();
        let handle = shared.checkout(&eng, bin, 0, 1, &disabled).unwrap();
        let process = Process::new(vec![to_variant(&handle)]);
        let (mut cpu, mut mem, _) = process.load(ExtSet::RV64GC).unwrap();
        let _ = cpu.run(&mut mem, 1);
        norewrite_min = norewrite_min.min(t0.elapsed().as_nanos() as f64);
    }

    // Warm pool: recycled copy-on-write slots, nothing copied on spawn.
    let handle = shared.checkout(&eng, bin, 0, 1, &disabled).unwrap();
    let mut pool = ProcessPool::new();
    let key = pool.register(to_variant(&handle));
    pool.prewarm(key, 1);
    let mut warm_min = f64::INFINITY;
    for _ in 0..WARM_SAMPLES {
        let t0 = Instant::now();
        let (mut cpu, mut mem) = pool.spawn(key, ExtSet::RV64GC).unwrap();
        let _ = cpu.run(&mut mem, 1);
        warm_min = warm_min.min(t0.elapsed().as_nanos() as f64);
        assert_eq!(
            mem.resident_bytes(),
            0,
            "a pooled slot shares every clean region with the master"
        );
        pool.recycle(key, 0, mem).expect("slot recycles");
    }
    let stats = pool.stats(key).unwrap();
    assert_eq!(stats.discarded, 0, "no warm sample may discard its slot");
    (cold_min, norewrite_min, warm_min)
}

struct ChurnOutcome {
    procs_per_sec: f64,
    retired: u64,
    recycled: u64,
    restored_bytes: u64,
    spawn_mean_ns: u64,
}

/// Rounds of 1000 concurrent pooled guests; consecutive rounds must be
/// bit-identical and every slot must come back.
fn churn_phase(variant: &Variant) -> ChurnOutcome {
    let tracer = Tracer::enabled();
    let mut pool = ProcessPool::with_config(DEFAULT_STACK_SIZE, tracer.clone());
    let key = pool.register(variant.clone());

    let mut baseline: Option<ManyHartResult> = None;
    let mut retired = 0u64;
    let t0 = Instant::now();
    for round in 0..ROUNDS {
        let mut k = ManyHartKernel::new(ManyHartConfig {
            workers: WORKERS,
            ..Default::default()
        });
        for _ in 0..GUESTS {
            k.add_pooled_hart(&mut pool, key, ExtSet::RV64GC, ExtSet::RV64GC)
                .expect("registered key spawns");
        }
        let r = k.run();
        assert_eq!(
            r.exited(),
            GUESTS,
            "round {round}: every guest exits: {:?}",
            r.first_failure()
        );
        for (i, h) in r.harts.iter().enumerate() {
            assert_eq!(h.exit, Some(14 + i as i64), "round {round} hart {i}");
        }
        let recycled = k.recycle_into(&mut pool);
        assert_eq!(recycled, GUESTS, "round {round}: every slot recycles");
        retired += r.retired;
        match &baseline {
            None => baseline = Some(r),
            Some(b) => assert_eq!(
                &r, b,
                "round {round} diverged from round 0 — recycled slots must \
                 be indistinguishable from fresh ones"
            ),
        }
    }
    let wall = t0.elapsed().as_secs_f64();

    let stats = pool.stats(key).unwrap();
    assert_eq!(stats.discarded, 0, "zero discards across the churn");
    assert_eq!(stats.recycled, (ROUNDS * GUESTS) as u64);
    assert_eq!(
        stats.instantiated, GUESTS as u64,
        "rounds after the first run entirely on recycled slots"
    );
    assert_eq!(
        stats.reused,
        ((ROUNDS - 1) * GUESTS) as u64,
        "every later-round spawn reused a slot"
    );
    // Restoration is span-proportional: each guest dirties a few dozen
    // bytes of stack and data, so per-slot restoration stays far below
    // the 256 KiB+ it would cost to rebuild the image.
    let per_slot = stats.restored_bytes / stats.recycled;
    assert!(
        per_slot < 4096,
        "recycle restored {per_slot} B/slot — dirty-span restoration \
         must not degrade to image-sized copies"
    );

    let metrics = tracer.metrics().expect("enabled tracer");
    let counter = |name: &str| metrics.counter_value(name).unwrap_or(0);
    assert_eq!(counter("pool.spawns"), (ROUNDS * GUESTS) as u64);
    assert_eq!(counter("pool.slots_recycled"), (ROUNDS * GUESTS) as u64);
    assert_eq!(counter("pool.slots_discarded"), 0);
    let spawn_hist = metrics.histogram("pool.spawn_ns");
    assert_eq!(spawn_hist.count(), (ROUNDS * GUESTS) as u64);
    let spawn_mean_ns = spawn_hist.sum() / spawn_hist.count().max(1);

    ChurnOutcome {
        procs_per_sec: (ROUNDS * GUESTS) as f64 / wall,
        retired,
        recycled: stats.recycled,
        restored_bytes: stats.restored_bytes,
        spawn_mean_ns,
    }
}

/// One holder self-modifies; the other holder and the shared template
/// must be untouched. Returns the shared-cache hit count for the JSON.
fn isolation_phase(bin: &Binary) -> u64 {
    let eng = engine();
    let shared = SharedVariantCache::new();
    let tracer = Tracer::enabled();
    let mut a = shared.checkout(&eng, bin, 0, 2, &tracer).unwrap();
    let b = shared.checkout(&eng, bin, 0, 2, &tracer).unwrap();
    assert!(!a.shared_hit && b.shared_hit);

    // A pokes a trampoline head and re-rewrites through its private copy.
    let site = *a
        .rewritten()
        .fht
        .trampolines
        .iter()
        .next()
        .expect("the guest has patch sites");
    let dirty = [DirtySpan {
        start: site,
        end: site + 4,
        generation: 1,
    }];
    let refreshed = run_incremental(&eng, bin, a.cache_mut(), &dirty, 2, &tracer).unwrap();
    assert_eq!(refreshed.rewritten, *a.rewritten());
    let redone: u64 = tracer
        .drain()
        .iter()
        .filter_map(|r| match r.event {
            TraceEvent::RewriteIncremental { units_redone, .. } => Some(units_redone),
            _ => None,
        })
        .sum();
    assert!(redone >= 1, "A's poke must redo at least one unit");

    // Zero cross-process invalidations: B never privatized, and a fresh
    // checkout still sees an all-clean shared stamp column.
    assert!(!b.has_private_cache(), "B must stay on shared state");
    let c = shared.checkout(&eng, bin, 0, 2, &tracer).unwrap();
    assert!(c.shared_hit);
    assert!(
        c.shared_stamps().iter().all(|&s| s == 0),
        "A's SMC poke leaked into the shared template"
    );
    let stats = shared.stats();
    assert_eq!((stats.entries, stats.misses, stats.hits), (1, 1, 2));
    let metrics = tracer.metrics().expect("enabled tracer");
    assert_eq!(
        metrics.counter_value("rewrite.cross_process_hits"),
        Some(stats.hits),
        "every shared hit is both counted and served"
    );
    stats.hits
}

fn main() {
    let bin = assemble(GUEST, AsmOptions::default()).unwrap();

    // Memory-footprint sanity: the pooled master commits the 256 KiB
    // default stack, not the single-hart 8 MiB maximum — at 1000 guests
    // that is the difference between ~¼ GiB and 8 GiB of stack pages.
    {
        let disabled = Tracer::disabled();
        let handle = SharedVariantCache::new()
            .checkout(&engine(), &bin, 0, 1, &disabled)
            .unwrap();
        let process = Process::new(vec![to_variant(&handle)]);
        let (_, mem, _) = process.load(ExtSet::RV64GC).unwrap();
        assert!(
            mem.mapped_bytes() < DEFAULT_STACK_SIZE + 128 * 1024,
            "eager load must commit the default stack, got {} B mapped",
            mem.mapped_bytes()
        );
    }

    let (cold_ns, norewrite_ns, warm_ns) = latency_phase(&bin);
    let vs_cold = cold_ns / warm_ns;
    let vs_norewrite = norewrite_ns / warm_ns;
    println!(
        "spawn latency (min): cold {} | cold-no-rewrite {} | warm pool {}",
        fmt_ns(cold_ns),
        fmt_ns(norewrite_ns),
        fmt_ns(warm_ns)
    );
    println!(
        "warm-pool speedup: {vs_cold:.1}x vs cold, {vs_norewrite:.1}x vs cold-no-rewrite \
         (target {TARGET_SPEEDUP}x, hard floor {:.2}x)",
        TARGET_SPEEDUP / NOISE_ALLOWANCE
    );
    assert!(
        vs_cold >= TARGET_SPEEDUP / NOISE_ALLOWANCE,
        "warm pooled spawn is only {vs_cold:.2}x faster than cold — below \
         the {:.2}x hard floor (target {TARGET_SPEEDUP}x)",
        TARGET_SPEEDUP / NOISE_ALLOWANCE
    );
    if vs_cold < TARGET_SPEEDUP {
        println!(
            "WARN: speedup {vs_cold:.1}x is under the {TARGET_SPEEDUP}x target \
             (within the noise allowance); rerun on quiet hardware if this persists"
        );
    }

    let shared = SharedVariantCache::new();
    let handle = shared
        .checkout(&engine(), &bin, 0, 2, &Tracer::disabled())
        .unwrap();
    let variant = to_variant(&handle);
    let churn = churn_phase(&variant);
    println!(
        "churn: {} guests x {} rounds, {:.0} processes/sec sustained, \
         {} recycles ({} B restored, ~{} B/slot), spawn mean {}",
        GUESTS,
        ROUNDS,
        churn.procs_per_sec,
        churn.recycled,
        churn.restored_bytes,
        churn.restored_bytes / churn.recycled,
        fmt_ns(churn.spawn_mean_ns as f64)
    );

    let shared_hits = isolation_phase(&bin);
    println!("isolation: {shared_hits} shared hits, zero cross-process invalidations");

    dump_json(
        cold_ns,
        norewrite_ns,
        warm_ns,
        vs_cold,
        vs_norewrite,
        &churn,
        shared_hits,
    );
    println!(
        "PASS: warm pooled spawn {vs_cold:.1}x over cold, {} guests churned \
         bit-identically across {} rounds, isolation holds",
        GUESTS, ROUNDS
    );
}

#[allow(clippy::too_many_arguments)]
fn dump_json(
    cold_ns: f64,
    norewrite_ns: f64,
    warm_ns: f64,
    vs_cold: f64,
    vs_norewrite: f64,
    churn: &ChurnOutcome,
    shared_hits: u64,
) {
    std::fs::create_dir_all("results").unwrap();
    let mut f = std::fs::File::create("results/process-churn.json").unwrap();
    writeln!(f, "{{").unwrap();
    writeln!(f, "  \"guests\": {GUESTS},").unwrap();
    writeln!(f, "  \"rounds\": {ROUNDS},").unwrap();
    writeln!(f, "  \"workers\": {WORKERS},").unwrap();
    writeln!(f, "  \"stack_bytes\": {DEFAULT_STACK_SIZE},").unwrap();
    writeln!(f, "  \"spawn_latency_ns\": {{").unwrap();
    writeln!(f, "    \"cold_full_min\": {cold_ns:.0},").unwrap();
    writeln!(f, "    \"cold_norewrite_min\": {norewrite_ns:.0},").unwrap();
    writeln!(f, "    \"warm_pool_min\": {warm_ns:.0},").unwrap();
    writeln!(f, "    \"warm_pool_churn_mean\": {}", churn.spawn_mean_ns).unwrap();
    writeln!(f, "  }},").unwrap();
    writeln!(f, "  \"speedup\": {{").unwrap();
    writeln!(f, "    \"vs_cold_full\": {vs_cold:.2},").unwrap();
    writeln!(f, "    \"vs_cold_norewrite\": {vs_norewrite:.2},").unwrap();
    writeln!(f, "    \"target\": {TARGET_SPEEDUP},").unwrap();
    writeln!(
        f,
        "    \"hard_floor\": {:.4}",
        TARGET_SPEEDUP / NOISE_ALLOWANCE
    )
    .unwrap();
    writeln!(f, "  }},").unwrap();
    writeln!(f, "  \"churn\": {{").unwrap();
    writeln!(f, "    \"procs_per_sec\": {:.0},", churn.procs_per_sec).unwrap();
    writeln!(f, "    \"retired\": {},", churn.retired).unwrap();
    writeln!(f, "    \"slots_recycled\": {},", churn.recycled).unwrap();
    writeln!(f, "    \"slots_discarded\": 0,").unwrap();
    writeln!(f, "    \"restored_bytes\": {},", churn.restored_bytes).unwrap();
    writeln!(f, "    \"deterministic\": true").unwrap();
    writeln!(f, "  }},").unwrap();
    writeln!(f, "  \"isolation\": {{").unwrap();
    writeln!(f, "    \"shared_hits\": {shared_hits},").unwrap();
    writeln!(f, "    \"cross_process_invalidations\": 0").unwrap();
    writeln!(f, "  }}").unwrap();
    writeln!(f, "}}").unwrap();
    println!("wrote results/process-churn.json");
}
