//! Micro-op execution-engine gate: throughput over the decode-cache
//! interpreter, with hard transparency and determinism asserts.
//!
//!     cargo run --release -p chimera-bench --bin exec_engine
//!
//! For each speclike workload the three front ends (reference
//! interpreter, decode-cache interpreter, micro-op engine) must produce
//! bit-identical [`chimera_emu::RunResult`]s — exit code, stdout, final
//! registers, every stats counter including simulated cycles — and the
//! cached modes' counters must reconcile exactly
//! (`hits_interp == hits_engine + chained_engine`, with identical misses,
//! builds and invalidations). Two engine runs must also be bit-identical
//! (block chaining and memory fast paths may never introduce
//! order-dependent state). All of those are hard asserts.
//!
//! The acceptance bar for the engine is a >= 2x dynamic-instruction
//! throughput improvement over the *decode-cache interpreter* (geomean
//! across the workloads, release build). The bar hard-fails only below
//! 1.5x so timing noise on shared CI runners can't flake the gate, and
//! warns between 1.5x and 2x. Results land in `results/exec-engine.json`.

use chimera_bench::harness::{bench, fmt_ns, Timing};
use chimera_emu::ExecMode;
use chimera_isa::ExtSet;
use chimera_obj::Binary;
use chimera_workloads::speclike::{generate, GenOptions, SPEC_PROFILES};
use std::io::Write as _;

const FUEL: u64 = u64::MAX / 2;

/// A diverse speclike subset: indirect-heavy, large-code, vector-leaning
/// and balanced profiles (timing the full 17-row zoo would only slow the
/// gate without changing the geomean materially).
const GATE_WORKLOADS: &[&str] = &["perlbench_r", "gcc_r", "cactuBSSN_r", "imagick_r"];

struct Row {
    name: &'static str,
    insts: u64,
    t_engine: Timing,
    t_interp: Timing,
    speedup: f64,
}

fn run_mode(bin: &Binary, mode: ExecMode) -> (chimera_emu::RunResult, chimera_emu::CacheStats) {
    let (mut cpu, mut mem) = chimera_emu::boot(bin, ExtSet::RV64GCV);
    cpu.set_mode(mode);
    let r = chimera_emu::run_cpu(&mut cpu, &mut mem, FUEL).expect("workload exits cleanly");
    (r, cpu.cache.stats)
}

fn main() {
    let mut rows = Vec::new();
    for profile in SPEC_PROFILES
        .iter()
        .filter(|p| GATE_WORKLOADS.contains(&p.name))
    {
        // `work_scale` is raised well past the differential suite's default
        // so each timed run retires millions of instructions: throughput is
        // a steady-state property, and with ~20k-inst runs the fixed
        // boot/map cost (identical in both modes) drowns the signal.
        let bin = generate(
            profile,
            GenOptions {
                size_scale: 1.0 / 256.0,
                work_scale: 64.0,
                seed: 11,
            },
        );

        // Transparency (hard): all three front ends bit-identical.
        let (reference, _) = run_mode(&bin, ExecMode::Reference);
        let (interp, ci) = run_mode(&bin, ExecMode::Interpreter);
        let (engine, ce) = run_mode(&bin, ExecMode::Engine);
        assert_eq!(reference, interp, "{}: interpreter diverged", profile.name);
        assert_eq!(reference, engine, "{}: engine diverged", profile.name);

        // Counter reconciliation (hard): chaining replaces dispatcher hits
        // one-for-one and touches nothing else.
        assert_eq!(
            ci.hits,
            ce.hits + ce.chained,
            "{}: hits must reconcile: {ci:?} vs {ce:?}",
            profile.name
        );
        assert_eq!(
            (ci.misses, ci.blocks_built, ci.invalidations),
            (ce.misses, ce.blocks_built, ce.invalidations),
            "{}: cache counters diverged",
            profile.name
        );
        assert!(ce.chained > 0, "{}: engine never chained", profile.name);

        // Determinism (hard): a repeated engine run is bit-identical,
        // cache counters included.
        let (engine2, ce2) = run_mode(&bin, ExecMode::Engine);
        assert_eq!(
            engine, engine2,
            "{}: engine run not deterministic",
            profile.name
        );
        assert_eq!(
            ce, ce2,
            "{}: engine counters not deterministic",
            profile.name
        );

        let insts = engine.stats.instret;
        println!(
            "exec_engine/{}: {} dynamic insts, {} simulated cycles, \
             {} chained follows",
            profile.name, insts, engine.stats.cycles, ce.chained
        );
        let t_engine = bench(
            &format!("exec_engine/{} (engine)", profile.name),
            40,
            9,
            || run_mode(std::hint::black_box(&bin), ExecMode::Engine),
        );
        let t_interp = bench(
            &format!("exec_engine/{} (interp)", profile.name),
            40,
            9,
            || run_mode(std::hint::black_box(&bin), ExecMode::Interpreter),
        );
        let speedup = t_interp.median_ns / t_engine.median_ns;
        println!(
            "  -> speedup {speedup:.2}x (median {} -> {})",
            fmt_ns(t_interp.median_ns),
            fmt_ns(t_engine.median_ns)
        );
        rows.push(Row {
            name: profile.name,
            insts,
            t_engine,
            t_interp,
            speedup,
        });
    }

    let geomean = (rows.iter().map(|r| r.speedup.ln()).sum::<f64>() / rows.len() as f64).exp();
    println!("exec-engine speedup geomean: {geomean:.2}x over the decode-cache interpreter");

    dump_json(&rows, geomean);

    assert!(
        geomean >= 1.5,
        "engine speedup collapsed: target is >= 2x over the decode-cache \
         interpreter, hard floor 1.5x to absorb shared-runner timing noise \
         (got {geomean:.2}x)"
    );
    if geomean >= 2.0 {
        println!("PASS: >= 2x geomean with bit-identical results in all modes");
    } else {
        println!(
            "WARN: {geomean:.2}x is under the 2x target (within the 1.5x \
             noise floor); rerun on quiet hardware if this persists"
        );
    }
}

fn dump_json(rows: &[Row], geomean: f64) {
    std::fs::create_dir_all("results").unwrap();
    let mut f = std::fs::File::create("results/exec-engine.json").unwrap();
    writeln!(f, "{{\n  \"workloads\": [").unwrap();
    for (i, r) in rows.iter().enumerate() {
        writeln!(
            f,
            "    {{\"name\": \"{}\", \"dynamic_insts\": {}, \
             \"median_ns_engine\": {:.0}, \"median_ns_interpreter\": {:.0}, \
             \"speedup\": {:.3}}}{}",
            r.name,
            r.insts,
            r.t_engine.median_ns,
            r.t_interp.median_ns,
            r.speedup,
            if i + 1 == rows.len() { "" } else { "," }
        )
        .unwrap();
    }
    writeln!(
        f,
        "  ],\n  \"geomean_speedup\": {geomean:.3},\n  \"deterministic\": true\n}}"
    )
    .unwrap();
    println!("wrote results/exec-engine.json");
}
