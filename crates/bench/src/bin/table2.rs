//! Regenerates Table 2: correctness-mechanism trigger counts of CHBP /
//! Safer / ARMore / strawman, normalized per 10⁹ retired instructions
//! (the paper reports absolute counts of full-length runs; see
//! EXPERIMENTS.md for the normalization note).

use chimera_bench::{fig13, table2_apps, Fig13Row, Scale, REWRITERS};

fn print_rows(rows: &[Fig13Row]) {
    for row in rows {
        print!("{:<14}", row.name);
        // Paper column order: CHBP, Safer, ARMore, Strawman.
        let order = [3usize, 1, 2, 0];
        for i in order {
            print!("{:>14.2e}", row.triggers_per_1e9[i]);
        }
        println!();
    }
}

fn main() {
    let scale = Scale::from_args();
    println!("== Table 2 — fault-handling triggers per 1e9 instructions ==");
    print!("{:<14}", "");
    for name in ["CHBP", "Safer", "ARMore", "Strawman"] {
        print!("{name:>14}");
    }
    println!();
    let _ = REWRITERS;
    println!("-- Real-world applications --");
    print_rows(&table2_apps(scale));
    println!("-- SPEC CPU2017 --");
    print_rows(&fig13(scale));
}
