//! Tracing-overhead gate + end-to-end trace coverage check.
//!
//!     cargo run --release -p chimera-bench --bin trace_overhead
//!
//! Part 1 re-times the `decode_cache` straight-line workload in three
//! configurations — no tracer plumbing at all, a disabled [`Tracer`]
//! attached, and a fully enabled tracer — asserts all three produce
//! bit-identical [`RunResult`]s, and gates the overhead ratios:
//!
//! * disabled vs baseline: target <= 2%, hard floor 5% (the disabled
//!   tracer is a branch over a `None`, so anything above noise is a
//!   regression in the instrumentation itself);
//! * enabled vs baseline: target <= 10%, hard floor 20% (events are
//!   per-block/per-trap, never per instruction, so a straight-line
//!   workload should barely notice an active sink).
//!
//! Part 2 runs one heterogeneous scenario — static rewrite, forced SMILE
//! fault, lazy rewriting of hidden vector code, a decode-cache
//! invalidation via self-modification, a JIT-tier promotion, shared
//! variant-cache checkouts plus pooled spawn/recycle cycles, and the
//! work-stealing simulator — against one shared tracer, asserts every one
//! of the fourteen [`TraceEvent`] kinds occurred (TierPromote is excused
//! on hosts without executable pages), reconciles event counts against
//! the metrics registry and the kernel's [`FaultCounters`], and dumps
//! `results/trace-hetero.json`.

use chimera::{measure_traced, Measurement};
use chimera_bench::harness::fmt_ns;
use chimera_emu::{RunError, RunResult};
use chimera_isa::ExtSet;
use chimera_kernel::{KernelRunner, Process, ProcessPool, RunOutcome, RuntimeTables, Variant};
use chimera_obj::{assemble, AsmOptions, Binary, DEFAULT_STACK_SIZE};
use chimera_rewrite::{
    chbp_rewrite_traced, run_cached, run_incremental, ChbpEngine, DirtySpan, RewriteOptions,
    SharedVariantCache,
};
use chimera_trace::{export_json, summarize, TraceEvent, Tracer};

/// The decode_cache straight-line workload: a long unrolled body
/// re-entered from one backward branch.
fn straight_line_binary() -> Binary {
    let mut src = String::from(
        "
        _start:
            li t0, 4000
            li a0, 0
            li a1, 7
        loop:
    ",
    );
    for _ in 0..32 {
        src.push_str("        add a0, a0, a1\n");
        src.push_str("        xor a0, a0, t0\n");
    }
    src.push_str(
        "
            addi t0, t0, -1
            bnez t0, loop
            li a7, 93
            ecall
        ",
    );
    assemble(&src, AsmOptions::default()).unwrap()
}

/// A 4-element vector reduction (exits 14): the rewriting + SMILE target.
const VEC_PROG: &str = "
    .data
    a: .dword 2
       .dword 3
       .dword 4
       .dword 5
    .text
    _start:
        li t0, 4
        vsetvli t1, t0, e64, m1, ta, ma
        la a0, a
        vle64.v v1, (a0)
        vmv.v.i v2, 0
        vredsum.vs v3, v1, v2
        vmv.x.s a0, v3
        li a7, 93
        ecall
";

/// A vector block reachable only through a doubled pointer the static
/// scan cannot see — the lazy-rewriting trigger (exits 34).
const HIDDEN_PROG: &str = "
    .data
    a: .dword 7
       .dword 8
       .dword 9
       .dword 10
    coded_ptr: .dword 0
    .text
    _start:
        li t0, 4
        vsetvli t1, t0, e64, m1, ta, ma
        la a0, a
        la t2, coded_ptr
        ld t3, 0(t2)
        srli t3, t3, 1
        jr t3
    hidden:
        vle64.v v1, (a0)
        vmv.v.i v2, 0
        vredsum.vs v3, v1, v2
        vmv.x.s a0, v3
        li a7, 93
        ecall
";

fn overhead_gate(bin: &Binary) {
    let fuel = u64::MAX / 2;

    // Transparency: all three configurations must be bit-identical —
    // exit code, stdout, cycle accounting and final registers.
    let baseline: RunResult =
        chimera_emu::run_binary_with(bin, ExtSet::RV64GCV, fuel, true).unwrap();
    let disabled =
        chimera_emu::run_binary_traced(bin, ExtSet::RV64GCV, fuel, true, &Tracer::disabled())
            .unwrap();
    let enabled_tracer = Tracer::enabled();
    let enabled =
        chimera_emu::run_binary_traced(bin, ExtSet::RV64GCV, fuel, true, &enabled_tracer).unwrap();
    assert_eq!(baseline, disabled, "disabled tracer must be transparent");
    assert_eq!(baseline, enabled, "enabled tracer must be transparent");
    assert!(
        !enabled_tracer.drain().is_empty(),
        "the enabled run must actually record events"
    );
    println!(
        "workload: {} dynamic insts, {} simulated cycles (identical in all 3 configs)",
        baseline.stats.instret, baseline.stats.cycles
    );

    // The three configurations are timed in interleaved round-robin
    // batches (not three sequential `bench()` blocks): frequency drift on
    // a shared runner would otherwise bias whichever config ran in the
    // slowest window, swamping a 2% target. The per-config *minimum* is
    // the gate statistic — the workload is deterministic, so the fastest
    // observed batch is the best noise-free estimate of its true cost.
    //
    // All three configs funnel through ONE non-inlined runner so they
    // execute the same machine code and differ only in the tracer handle:
    // per-call-site inlining would otherwise duplicate the emulator's hot
    // loop with different code layout, and the resulting alignment skew
    // (up to ~10% between identical-work call sites) would swamp the gate.
    #[inline(never)]
    fn timed_run(bin: &Binary, fuel: u64, tracer: &Tracer) {
        chimera_emu::run_binary_traced(
            std::hint::black_box(bin),
            ExtSet::RV64GCV,
            fuel,
            true,
            std::hint::black_box(tracer),
        )
        .unwrap();
    }
    // The enabled tracer is long-lived and its per-thread ring simply
    // wraps (overwriting a slot costs the same as filling it), matching a
    // harness that drains between runs without timing the drain.
    let timing_tracer = Tracer::enabled();
    let mut configs: [(&str, Tracer, Vec<f64>); 3] = [
        ("baseline (no tracer)", Tracer::disabled(), Vec::new()),
        ("tracer disabled", Tracer::disabled(), Vec::new()),
        ("tracer enabled", timing_tracer, Vec::new()),
    ];

    // Calibrate a batch size of roughly 25 ms against the baseline.
    let iters = {
        let t0 = std::time::Instant::now();
        timed_run(bin, fuel, &configs[0].1);
        let one = t0.elapsed().as_nanos().max(1);
        ((25_000_000 / one) as u64).clamp(1, 1 << 16)
    };
    const ROUNDS: usize = 12;
    for round in 0..ROUNDS {
        for i in 0..configs.len() {
            // Rotate the in-round order so no config owns a fixed slot.
            let c = &mut configs[(round + i) % 3];
            let t0 = std::time::Instant::now();
            for _ in 0..iters {
                timed_run(bin, fuel, &c.1);
            }
            c.2.push(t0.elapsed().as_nanos() as f64 / iters as f64);
        }
    }
    let mut mins = [0f64; 3];
    for (i, (name, _, samples)) in configs.iter().enumerate() {
        mins[i] = samples.iter().copied().fold(f64::INFINITY, f64::min);
        println!(
            "trace_overhead/{name:<24} min {} over {ROUNDS} interleaved batches \
             ({iters} iters/batch)",
            fmt_ns(mins[i])
        );
    }
    let [base_ns, dis_ns, en_ns] = mins;

    let dis_ratio = dis_ns / base_ns;
    let en_ratio = en_ns / base_ns;
    println!(
        "disabled overhead: {:.1}% (min {} vs {})",
        (dis_ratio - 1.0) * 100.0,
        fmt_ns(dis_ns),
        fmt_ns(base_ns)
    );
    println!(
        "enabled overhead:  {:.1}% (min {} vs {})",
        (en_ratio - 1.0) * 100.0,
        fmt_ns(en_ns),
        fmt_ns(base_ns)
    );
    assert!(
        dis_ratio <= 1.05,
        "disabled-tracer overhead exceeded the 5% hard floor \
         (target <= 2%, got {:.1}%)",
        (dis_ratio - 1.0) * 100.0
    );
    assert!(
        en_ratio <= 1.20,
        "enabled-tracer overhead exceeded the 20% hard floor \
         (target <= 10%, got {:.1}%)",
        (en_ratio - 1.0) * 100.0
    );
    if dis_ratio > 1.02 {
        println!(
            "WARN: disabled overhead {:.1}% is over the 2% target (within the \
             5% noise floor); rerun on quiet hardware if this persists",
            (dis_ratio - 1.0) * 100.0
        );
    }
    if en_ratio > 1.10 {
        println!(
            "WARN: enabled overhead {:.1}% is over the 10% target (within the \
             20% noise floor); rerun on quiet hardware if this persists",
            (en_ratio - 1.0) * 100.0
        );
    }
    if dis_ratio <= 1.02 && en_ratio <= 1.10 {
        println!("PASS: overhead within target in both traced configs");
    }
}

/// Totals accumulated from the authoritative per-run sources (kernel
/// fault counters, per-CPU cache stats), reconciled against the trace.
#[derive(Default)]
struct Expected {
    blocks_built: u64,
    invalidations: u64,
    chained: u64,
    smile_faults: u64,
    lazy_rewrites: u64,
}

fn hetero_scenario() {
    let tracer = Tracer::enabled();
    let mut expected = Expected::default();

    // (a) Static rewrite of the vector program, traced: 6 RewritePassDone
    // (scan/plan/transform/place/link/verify pipeline stages).
    let vec_bin = assemble(VEC_PROG, AsmOptions::default()).unwrap();
    let rw =
        chbp_rewrite_traced(&vec_bin, ExtSet::RV64GC, RewriteOptions::default(), &tracer).unwrap();
    let variant = Variant {
        binary: rw.binary,
        tables: RuntimeTables {
            fht: Some(rw.fht),
            regen: None,
        },
    };
    let process = Process::new(vec![variant]);

    // (a2) Incremental re-rewrite: prime a per-unit cache (6 more
    // RewritePassDone), dirty one site, and re-rewrite incrementally —
    // one RewriteIncremental event plus the units_reused/units_redone
    // counters, which must reconcile with the unit total.
    let incremental_total = {
        let engine = ChbpEngine {
            target: ExtSet::RV64GC,
            opts: RewriteOptions::default(),
        };
        let (primed, mut cache) = run_cached(&engine, &vec_bin, 2, &tracer).unwrap();
        let site = *primed
            .rewritten
            .fht
            .trampolines
            .iter()
            .next()
            .expect("the vector program has patch sites");
        let dirty = [DirtySpan {
            start: site,
            end: site + 4,
            generation: 1,
        }];
        let inc = run_incremental(&engine, &vec_bin, &mut cache, &dirty, 2, &tracer).unwrap();
        assert_eq!(
            inc.rewritten, primed.rewritten,
            "incremental must be bit-identical to the cached full rewrite"
        );
        cache.unit_count() as u64
    };

    // (b) Forced erroneous jump onto a SMILE redirect key: the passive
    // fault handler must recover it (normal trampoline execution never
    // faults, so the fault is provoked explicitly).
    {
        let (mut cpu, mut mem, view) = process.load(ExtSet::RV64GC).unwrap();
        cpu.tracer = tracer.clone();
        let fht = view.tables.fht.as_ref().unwrap();
        let (&fault_addr, _) = fht.redirects.iter().next().expect("redirects exist");
        cpu.hart.pc = fault_addr;
        let mut k = KernelRunner::with_tracer(view.tables.clone(), tracer.clone());
        let outcome = k.run(&mut cpu, &mut mem, 1_000_000);
        assert!(
            matches!(outcome, RunOutcome::Exited(_)),
            "smile recovery must complete the run, got {outcome:?}"
        );
        assert!(k.counters.smile_faults >= 1);
        expected.smile_faults += k.counters.smile_faults;
        expected.lazy_rewrites += k.counters.lazy_rewrites;
        expected.blocks_built += cpu.cache.stats.blocks_built;
        expected.invalidations += cpu.cache.stats.invalidations;
        expected.chained += cpu.cache.stats.chained;
    }

    // (c) Hidden vector code behind a doubled pointer: the kernel must
    // rewrite lazily at fault time.
    {
        let hidden_src = HIDDEN_PROG;
        let ref_bin = assemble(
            &hidden_src.replace("coded_ptr: .dword 0", "coded_ptr: .dword hidden"),
            AsmOptions::default(),
        )
        .unwrap();
        let dref = chimera_analysis::disassemble(&ref_bin);
        let hidden = dref
            .iter()
            .find(|di| matches!(di.inst, chimera_isa::Inst::VLoad { .. }))
            .unwrap()
            .addr;
        let mut bin = assemble(hidden_src, AsmOptions::default()).unwrap();
        let data = bin.section(".data").unwrap().addr;
        bin.write(data + 32, &(hidden * 2).to_le_bytes());

        let rw =
            chbp_rewrite_traced(&bin, ExtSet::RV64GC, RewriteOptions::default(), &tracer).unwrap();
        let lazy_process = Process::new(vec![Variant {
            binary: rw.binary,
            tables: RuntimeTables {
                fht: Some(rw.fht),
                regen: None,
            },
        }]);
        let (mut cpu, mut mem, view) = lazy_process.load(ExtSet::RV64GC).unwrap();
        cpu.tracer = tracer.clone();
        let mut k = KernelRunner::with_tracer(view.tables.clone(), tracer.clone());
        let outcome = k.run(&mut cpu, &mut mem, 1_000_000);
        assert_eq!(outcome, RunOutcome::Exited(34));
        assert!(k.counters.lazy_rewrites >= 1, "lazy rewriting must trigger");
        expected.smile_faults += k.counters.smile_faults;
        expected.lazy_rewrites += k.counters.lazy_rewrites;
        expected.blocks_built += cpu.cache.stats.blocks_built;
        expected.invalidations += cpu.cache.stats.invalidations;
        expected.chained += cpu.cache.stats.chained;
    }

    // (d) Decode-cache invalidation: run a loop long enough to cache its
    // blocks, poke the text region from the host (generation bump, same
    // bytes), and resume — the next lookup of a cached loop block is
    // stale and must invalidate.
    {
        let bin = assemble(
            "
            _start:
                li t0, 200
                li a0, 0
            loop:
                addi a0, a0, 1
                addi t0, t0, -1
                bnez t0, loop
                li a7, 93
                ecall
            ",
            AsmOptions::default(),
        )
        .unwrap();
        let (mut cpu, mut mem) = chimera_emu::boot(&bin, ExtSet::RV64GCV);
        cpu.tracer = tracer.clone();
        match chimera_emu::run_cpu(&mut cpu, &mut mem, 50) {
            Err(RunError::OutOfFuel) => {}
            other => panic!("expected an out-of-fuel pause, got {other:?}"),
        }
        let head = mem.peek(bin.entry, 4).unwrap();
        mem.poke_code(bin.entry, &head).unwrap();
        let r = chimera_emu::run_cpu(&mut cpu, &mut mem, 1_000_000).unwrap();
        assert_eq!(r.exit_code, 200);
        assert!(
            cpu.cache.stats.invalidations >= 1,
            "the generation bump must invalidate a cached loop block"
        );
        expected.blocks_built += cpu.cache.stats.blocks_built;
        expected.invalidations += cpu.cache.stats.invalidations;
        expected.chained += cpu.cache.stats.chained;
    }

    // (e) JIT-tier promotion: a hot loop over the compile threshold in
    // Jit mode emits TierPromote events. Hosts without executable pages
    // skip this segment (the tier stays inert there), and the kind
    // check below relaxes to match.
    let jit_available = chimera_emu::jit_available();
    if jit_available {
        let bin = assemble(
            "
            _start:
                li t0, 200
                li a0, 0
            loop:
                addi a0, a0, 1
                addi t0, t0, -1
                bnez t0, loop
                li a7, 93
                ecall
            ",
            AsmOptions::default(),
        )
        .unwrap();
        let (mut cpu, mut mem) = chimera_emu::boot(&bin, ExtSet::RV64GCV);
        cpu.set_mode(chimera_emu::ExecMode::Jit);
        cpu.set_jit_threshold(1);
        cpu.tracer = tracer.clone();
        let r = chimera_emu::run_cpu(&mut cpu, &mut mem, 1_000_000).unwrap();
        assert_eq!(r.exit_code, 200);
        assert!(
            cpu.cache.stats.jit_execs >= 1,
            "the hot loop must promote into the jit tier"
        );
        expected.blocks_built += cpu.cache.stats.blocks_built;
        expected.invalidations += cpu.cache.stats.invalidations;
        expected.chained += cpu.cache.stats.chained;
    }

    // (f) A measured run through the full stack, published into the same
    // registry: the trace dump carries the authoritative totals.
    let m = measure_traced(&process, ExtSet::RV64GC, 1_000_000, &tracer).unwrap();
    assert_eq!(m.exit_code, 14);
    expected.smile_faults += m.counters.smile_faults;
    expected.lazy_rewrites += m.counters.lazy_rewrites;
    expected.blocks_built += m.cache.blocks_built;
    expected.invalidations += m.cache.invalidations;
    expected.chained += m.cache.chained;
    let metrics = tracer.metrics().expect("enabled tracer has metrics");
    let round_trip = Measurement::from_registry(metrics).expect("measurement published");
    assert_eq!(round_trip, m, "publish/from_registry must round-trip");

    // (g) Work-stealing simulation: base tasks plus FAM-only extension
    // tasks force scheduling, stealing and migration events.
    let machine = chimera_kernel::SimMachine {
        base_cores: 2,
        ext_cores: 2,
        migrate_cost: 100,
    };
    let mut tasks = vec![
        chimera_kernel::TaskCost {
            prefers: chimera_kernel::Pool::Base,
            on_ext: 1_000,
            on_base: Some(1_000),
            fam_probe: 0,
            ext_accelerated: false,
        };
        4
    ];
    tasks.extend(vec![
        chimera_kernel::TaskCost {
            prefers: chimera_kernel::Pool::Ext,
            on_ext: 1_000,
            on_base: None,
            fam_probe: 10,
            ext_accelerated: true,
        };
        8
    ]);
    let sim = chimera_kernel::simulate_work_stealing_traced(machine, &tasks, &tracer);
    assert!(sim.migrations > 0, "FAM tasks must migrate");

    // (h) Cross-process variant sharing + pooled process churn: one cold
    // checkout (a fourth traced full rewrite — 6 more RewritePassDone),
    // two warm checkouts (one VariantShared event and one
    // `rewrite.cross_process_hits` count each), then two pooled
    // spawn → run → recycle cycles (one SlotRecycled event and one
    // `pool.slots_recycled` count each, plus `pool.spawn_ns`
    // observations).
    {
        let engine = ChbpEngine {
            target: ExtSet::RV64GC,
            opts: RewriteOptions::default(),
        };
        let shared = SharedVariantCache::new();
        let cold = shared.checkout(&engine, &vec_bin, 0, 2, &tracer).unwrap();
        assert!(!cold.shared_hit, "first checkout pays the rewrite");
        for _ in 0..2 {
            let warm = shared.checkout(&engine, &vec_bin, 0, 2, &tracer).unwrap();
            assert!(warm.shared_hit, "warm checkouts are served shared");
            assert_eq!(warm.rewritten(), cold.rewritten());
        }
        let mut pool = ProcessPool::with_config(DEFAULT_STACK_SIZE, tracer.clone());
        let key = pool.register(Variant {
            binary: cold.rewritten().binary.clone(),
            tables: RuntimeTables {
                fht: Some(cold.rewritten().fht.clone()),
                regen: cold.regen().cloned(),
            },
        });
        for hart in 0..2u64 {
            let (mut cpu, mut mem) = pool.spawn(key, ExtSet::RV64GC).unwrap();
            cpu.tracer = tracer.clone();
            let tables = pool.variant(key).unwrap().tables.clone();
            let mut k = KernelRunner::with_tracer(tables, tracer.clone());
            let outcome = k.run(&mut cpu, &mut mem, 1_000_000);
            assert_eq!(outcome, RunOutcome::Exited(14));
            expected.smile_faults += k.counters.smile_faults;
            expected.lazy_rewrites += k.counters.lazy_rewrites;
            expected.blocks_built += cpu.cache.stats.blocks_built;
            expected.invalidations += cpu.cache.stats.invalidations;
            expected.chained += cpu.cache.stats.chained;
            pool.recycle(key, hart, mem).expect("slot recycles");
        }
    }

    // Drain once and reconcile: every event kind present, and each event
    // count equals both its tracer counter and the authoritative source.
    let records = tracer.drain();
    let count = |kind: &str| records.iter().filter(|r| r.event.kind() == kind).count() as u64;
    for kind in TraceEvent::KINDS {
        if kind == "TierPromote" && !jit_available {
            continue;
        }
        assert!(count(kind) > 0, "no {kind} event in the hetero trace");
    }
    let counter = |name: &str| metrics.counter_value(name).unwrap_or(0);
    assert_eq!(count("TierPromote"), counter("emu.blocks_jitted"));

    assert_eq!(count("BlockBuilt"), counter("emu.blocks_built"));
    assert_eq!(count("BlockBuilt"), expected.blocks_built);
    assert_eq!(count("CacheInvalidate"), counter("emu.cache_invalidations"));
    assert_eq!(count("CacheInvalidate"), expected.invalidations);
    // BlockChained is emitted once per *created* link (a cold event); the
    // per-CPU `chained` stat counts link *follows*, so the trace only
    // reconciles against its own counter. Follows are asserted non-zero —
    // the engine must actually run on chains in these loopy scenarios.
    assert_eq!(count("BlockChained"), counter("emu.blocks_chained"));
    assert!(
        expected.chained > 0,
        "the engine must follow chain links in the hetero scenario"
    );
    assert_eq!(count("SmileFaultRecovered"), counter("kernel.smile_faults"));
    assert_eq!(count("SmileFaultRecovered"), expected.smile_faults);
    assert_eq!(count("LazyRewrite"), counter("kernel.lazy_rewrites"));
    assert_eq!(count("LazyRewrite"), expected.lazy_rewrites);
    assert_eq!(count("TaskMigrated"), counter("sched.migrations"));
    assert_eq!(count("TaskMigrated"), sim.migrations as u64);
    assert_eq!(count("TaskScheduled"), counter("sched.tasks_scheduled"));
    let successful_steals = records
        .iter()
        .filter(|r| matches!(r.event, TraceEvent::StealAttempt { success: true, .. }))
        .count() as u64;
    assert_eq!(successful_steals, counter("sched.steals"));
    // Four traced full rewrites (two chbp_rewrite_traced, the cache
    // priming run, and the shared cache's cold checkout), six pipeline
    // stages each; the incremental run and the warm checkouts emit no
    // per-pass events.
    assert_eq!(count("RewritePassDone"), 24);
    assert_eq!(count("RewriteIncremental"), 1);
    // Cross-process sharing and pooled churn reconcile exactly: every
    // warm checkout is both traced and counted, every recycled slot
    // likewise, and both pooled spawns were latency-observed.
    assert_eq!(count("VariantShared"), 2);
    assert_eq!(
        count("VariantShared"),
        counter("rewrite.cross_process_hits")
    );
    assert_eq!(count("SlotRecycled"), 2);
    assert_eq!(count("SlotRecycled"), counter("pool.slots_recycled"));
    assert_eq!(counter("pool.spawns"), 2);
    assert_eq!(counter("pool.slots_discarded"), 0);
    assert_eq!(metrics.histogram("pool.spawn_ns").count(), 2);
    assert_eq!(
        counter("rewrite.units_reused") + counter("rewrite.units_redone"),
        incremental_total,
        "reuse counters must reconcile with the unit total"
    );
    assert!(
        counter("rewrite.units_redone") >= 1,
        "the dirtied site's unit must be redone"
    );
    assert_eq!(tracer.dropped(), 0, "nothing may have been dropped");

    std::fs::create_dir_all("results").unwrap();
    let json = export_json("hetero", &records, Some(metrics), tracer.dropped());
    std::fs::write("results/trace-hetero.json", &json).unwrap();
    println!("wrote results/trace-hetero.json ({} bytes)", json.len());
    print!("{}", summarize(&records, Some(metrics)));
    if jit_available {
        println!("PASS: all 14 event kinds present, counters reconcile exactly");
    } else {
        println!(
            "PASS: 13/14 event kinds present (TierPromote excused: no \
             executable pages), counters reconcile exactly"
        );
    }
}

fn main() {
    let bin = straight_line_binary();
    overhead_gate(&bin);
    hetero_scenario();
}
