//! Renders Table 1: the qualitative comparison of Chimera and related
//! systems (documentation aid; the paper's static table).

fn main() {
    println!("== Table 1 — Comparison of Chimera and related works ==");
    println!(
        "{:<22}{:<18}{:<20}{:<13}{:<10}",
        "System", "Need Source Code", "Low Porting Effort", "Correctness", "High Perf."
    );
    let rows = [
        ("FAM (scheduling)", "No", "Yes", "Yes", "No"),
        ("MELF (compilation)", "Yes", "No", "Yes", "Yes"),
        ("Multiverse (regen.)", "No", "Yes", "Yes", "No"),
        ("Safer (regen.)", "No", "Yes", "Yes", "No"),
        ("Egalito (regen.)", "No", "Yes", "No", "Yes"),
        ("SURI (regen.)", "No", "Yes", "No", "Yes"),
        ("BinRec (regen.)", "No", "Yes", "No", "Yes"),
        ("ARMore (patching)", "No", "Yes", "Yes", "No"),
        ("PIFER (patching)", "No", "Yes", "Yes", "No"),
        ("Chimera (ours)", "No", "Yes", "Yes", "Yes"),
    ];
    for (s, a, b, c, d) in rows {
        println!("{s:<22}{a:<18}{b:<20}{c:<13}{d:<10}");
    }
}
