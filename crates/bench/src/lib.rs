//! # chimera-bench
//!
//! The experiment harness: one function per paper figure/table, shared by
//! the `fig11`/`fig12`/`fig13`/`fig14`/`table1`/`table2`/`table3` binaries
//! and the micro-benches (see [`harness`]). Every function prints the same
//! rows or series the paper reports (shape, not absolute silicon numbers —
//! see EXPERIMENTS.md).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;

use chimera::{
    empty_patch_with, measure, measure_or_fam_probe, prepare_process, run_variant, FamResult,
    InputVersion, RewriterKind, SystemKind, TaskBinaries,
};
use chimera_isa::ExtSet;
use chimera_kernel::{simulate_work_stealing, Pool, SimMachine, TaskCost};
use chimera_workloads::blas::{sliced_kernels, BlasKind};
use chimera_workloads::hetero::{fib_task, matrix_task};
use chimera_workloads::speclike::{
    generate, BenchProfile, GenOptions, APP_PROFILES, SPEC_PROFILES,
};

/// Harness scale (full for the committed results, quick for CI smoke).
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Code-size scale for SPEC-like generation.
    pub size_scale: f64,
    /// Dynamic-work scale.
    pub work_scale: f64,
    /// Task-count for scheduling sweeps.
    pub n_tasks: usize,
}

impl Scale {
    /// Full scale (a few minutes of runtime end to end).
    pub fn full() -> Scale {
        Scale {
            size_scale: 1.0 / 16.0,
            work_scale: 2.0,
            n_tasks: 1000,
        }
    }

    /// Quick scale (seconds; used by smoke tests and Criterion wrappers).
    pub fn quick() -> Scale {
        Scale {
            size_scale: 1.0 / 512.0,
            work_scale: 0.4,
            n_tasks: 120,
        }
    }

    /// Reads `--quick` from argv.
    pub fn from_args() -> Scale {
        if std::env::args().any(|a| a == "--quick") {
            Scale::quick()
        } else {
            Scale::full()
        }
    }
}

const FUEL: u64 = u64::MAX / 2;

/// The four §6.1 systems in the paper's plotting order.
pub const SYSTEMS: [SystemKind; 4] = [
    SystemKind::Fam,
    SystemKind::Safer,
    SystemKind::Melf,
    SystemKind::Chimera,
];

/// One Fig. 11/12 sweep point.
#[derive(Debug, Clone, Copy)]
pub struct SweepPoint {
    /// Extension-task share (0.0–1.0).
    pub ext_share: f64,
    /// End-to-end latency (cycles).
    pub latency: u64,
    /// Accumulated CPU time (cycles).
    pub cpu_time: u64,
    /// Share of extension tasks that ran vector-accelerated.
    pub accelerated: f64,
}

/// Measures one system's per-task costs and sweeps the extension-task
/// share (Fig. 11 one row, Fig. 12 via `accelerated`).
pub fn hetero_sweep(system: SystemKind, input: InputVersion, scale: Scale) -> Vec<SweepPoint> {
    let task = TaskBinaries {
        base_version: Some(matrix_task(64, 4, false)),
        ext_version: Some(matrix_task(64, 4, true)),
    };
    let fib_bins = TaskBinaries {
        base_version: Some(fib_task(900, 4)),
        ext_version: Some(fib_task(900, 4)),
    };
    let matrix = prepare_process(system, input, &task).expect("prepare matrix");
    let fib = prepare_process(system, input, &fib_bins).expect("prepare fib");

    let m_ext = measure(&matrix, ExtSet::RV64GCV, FUEL).expect("matrix on ext");
    let (on_base, probe) =
        match measure_or_fam_probe(&matrix, ExtSet::RV64GC, FUEL).expect("matrix on base") {
            FamResult::Completed(m) => (Some(m.cycles), 0),
            FamResult::Migrated { probe_cycles } => (None, probe_cycles),
        };
    let f = measure(&fib, ExtSet::RV64GC, FUEL).expect("fib");
    let accelerated = on_base.map(|b| m_ext.cycles * 100 < b * 97).unwrap_or(true);

    let matrix_cost = TaskCost {
        prefers: Pool::Ext,
        on_ext: m_ext.cycles,
        on_base,
        fam_probe: probe,
        ext_accelerated: accelerated,
    };
    let fib_cost = TaskCost {
        prefers: Pool::Base,
        on_ext: f.cycles,
        on_base: Some(f.cycles),
        fam_probe: 0,
        ext_accelerated: false,
    };
    let machine = SimMachine {
        base_cores: 4,
        ext_cores: 4,
        migrate_cost: 4000,
    };

    (0..=10)
        .map(|i| {
            let ext_share = i as f64 / 10.0;
            let n_ext = (scale.n_tasks as f64 * ext_share) as usize;
            let mut tasks = vec![matrix_cost; n_ext];
            tasks.extend(vec![fib_cost; scale.n_tasks - n_ext]);
            let r = simulate_work_stealing(machine, &tasks);
            SweepPoint {
                ext_share,
                latency: r.latency,
                cpu_time: r.cpu_time,
                accelerated: if r.ext_tasks == 0 {
                    1.0
                } else {
                    r.accelerated_ext_tasks as f64 / r.ext_tasks as f64
                },
            }
        })
        .collect()
}

/// One Fig. 13 row: per-rewriter overhead relative to the original binary.
#[derive(Debug, Clone)]
pub struct Fig13Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Overhead fraction per rewriter, in [`REWRITERS`] order.
    pub overhead: [f64; 4],
    /// Fault-handling trigger counts per rewriter (Table 2), normalized
    /// per 10⁹ retired instructions.
    pub triggers_per_1e9: [f64; 4],
    /// Native retired instructions.
    pub native_instret: u64,
}

/// The four §6.2 rewriters in the paper's plotting order.
pub const REWRITERS: [RewriterKind; 4] = [
    RewriterKind::Strawman,
    RewriterKind::Safer,
    RewriterKind::Armore,
    RewriterKind::Chbp,
];

/// Runs the §6.2 empty-patching methodology for one benchmark profile.
pub fn fig13_row(profile: &BenchProfile, scale: Scale) -> Fig13Row {
    let bin = generate(
        profile,
        GenOptions {
            size_scale: scale.size_scale,
            work_scale: scale.work_scale,
            seed: 42,
        },
    );
    let native = chimera_emu::run_binary(&bin, FUEL).expect("native run");
    let base = native.stats.cycles as f64;

    let mut overhead = [0.0; 4];
    let mut triggers = [0.0; 4];
    for (i, rk) in REWRITERS.iter().enumerate() {
        let variant = empty_patch_with(*rk, &bin).expect("rewrite");
        let m = run_variant(&variant, ExtSet::RV64GCV, FUEL)
            .unwrap_or_else(|e| panic!("{} on {}: {e}", rk.name(), profile.name));
        assert_eq!(m.exit_code, native.exit_code, "{}", rk.name());
        overhead[i] = m.cycles as f64 / base - 1.0;
        // Trigger counts (Table 2): Safer counts every executed
        // indirect-jump check; trap-based methods count kernel traps;
        // CHBP counts handled deterministic faults.
        let raw = match rk {
            RewriterKind::Safer => m.indirect_jumps + m.counters.safer_corrections,
            RewriterKind::Chbp => m.counters.total(),
            _ => m.counters.trap_trampolines + m.counters.total(),
        };
        triggers[i] = raw as f64 * 1e9 / m.instret.max(1) as f64;
    }
    Fig13Row {
        name: profile.name,
        overhead,
        triggers_per_1e9: triggers,
        native_instret: native.stats.instret,
    }
}

/// All Fig. 13 rows (SPEC profiles).
pub fn fig13(scale: Scale) -> Vec<Fig13Row> {
    SPEC_PROFILES.iter().map(|p| fig13_row(p, scale)).collect()
}

/// Table 2 rows for the real-world application profiles.
pub fn table2_apps(scale: Scale) -> Vec<Fig13Row> {
    APP_PROFILES.iter().map(|p| fig13_row(p, scale)).collect()
}

/// One Table 3 row: static rewriting statistics for CHBP.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Generated code size in bytes.
    pub code_size: u64,
    /// Share of extension instructions (recognized).
    pub ext_share: f64,
    /// Exit trampolines emitted.
    pub exit_trampolines: usize,
    /// Dead register not found: (CHBP shifting, traditional liveness).
    pub dead_not_found: (usize, usize),
    /// SMILE trampolines placed.
    pub smile: usize,
    /// Trap-entry fallbacks.
    pub traps: usize,
}

/// Computes Table 3 for one profile (downgrade rewriting, the Table 3
/// configuration).
///
/// Table 3 is *static* (rewriting-time statistics only), so the full run
/// uses the paper's real code sizes — the > 1 MiB premise that makes exit
/// trampolines need long-distance register jumps. `--quick` keeps the
/// sweep scale for smoke runs.
pub fn table3_row(profile: &BenchProfile, scale: Scale) -> Table3Row {
    let full_static = scale.size_scale >= 1.0 / 64.0;
    let bin = generate(
        profile,
        GenOptions {
            size_scale: if full_static { 1.0 } else { scale.size_scale },
            work_scale: 0.1, // Never executed; keep generation light.
            seed: 42,
        },
    );
    let rw = chimera_rewrite::chbp_rewrite(
        &bin,
        ExtSet::RV64GC,
        chimera_rewrite::RewriteOptions::default(),
    )
    .expect("rewrite");
    let s = rw.stats;
    Table3Row {
        name: profile.name,
        code_size: s.code_size,
        ext_share: s.source_insts as f64 / s.total_insts.max(1) as f64,
        exit_trampolines: s.exit_trampolines,
        dead_not_found: (s.dead_reg_not_found_shift, s.dead_reg_not_found_traditional),
        smile: s.smile_trampolines,
        traps: s.trap_entries,
    }
}

/// All Table 3 rows (apps then SPEC, like the paper).
pub fn table3(scale: Scale) -> Vec<Table3Row> {
    APP_PROFILES
        .iter()
        .chain(SPEC_PROFILES.iter())
        .map(|p| table3_row(p, scale))
        .collect()
}

/// One Fig. 14 series point: acceleration ratio relative to FAM Ext.
#[derive(Debug, Clone, Copy)]
pub struct Fig14Point {
    /// Worker threads.
    pub threads: usize,
    /// (FAM Ext., FAM Base, MELF, Chimera) acceleration ratios.
    pub ratios: [f64; 4],
}

/// Fig. 14 for one BLAS kernel on a machine with `base_cores` +
/// `ext_cores`; threads ≤ cores are pinned half-and-half like the paper.
pub fn fig14_kernel(
    kind: BlasKind,
    size: usize,
    thread_counts: &[usize],
    base_cores: usize,
    ext_cores: usize,
) -> Vec<Fig14Point> {
    thread_counts
        .iter()
        .map(|&threads| {
            // FAM pins one equal slice per thread; the heterogeneous
            // systems split the same matrix into finer slices and balance
            // them dynamically across both pools (the §6.1 work-stealing
            // policy), which is where their advantage over FAM Base comes
            // from at high thread counts.
            let slices = sliced_kernels(kind, size, threads);
            let fine = sliced_kernels(kind, size, (threads * 4).min(size));
            // Per-slice costs for each configuration.
            let mut fam_ext = Vec::new(); // Vector slice on ext core.
            let mut fam_base = Vec::new(); // Scalar slice on base core.
            let mut melf = Vec::new(); // (ext cost, base cost) per slice.
            let mut chim = Vec::new();
            for (v, s) in &slices {
                let nv = chimera_emu::run_binary(v, FUEL).expect("vector native");
                let ns = chimera_emu::run_binary(s, FUEL).expect("scalar native");
                assert_eq!(nv.exit_code, ns.exit_code, "{}", kind.name());
                fam_ext.push(nv.stats.cycles);
                fam_base.push(ns.stats.cycles);
            }
            for (v, s) in &fine {
                let nv = chimera_emu::run_binary(v, FUEL).expect("vector native");
                let ns = chimera_emu::run_binary(s, FUEL).expect("scalar native");
                let task = TaskBinaries {
                    base_version: Some(s.clone()),
                    ext_version: Some(v.clone()),
                };
                let p = prepare_process(SystemKind::Chimera, InputVersion::Ext, &task)
                    .expect("chimera prepare");
                let down = measure(&p, ExtSet::RV64GC, FUEL).expect("downgraded");
                melf.push((nv.stats.cycles, ns.stats.cycles));
                chim.push((nv.stats.cycles, down.cycles));
            }
            // Synchronization: a barrier joins all threads; cost grows with
            // the thread count (the paper's sgemm bottleneck).
            let sync = 400 * (threads as u64) * (threads as u64).ilog2().max(1) as u64;

            // FAM Ext.: all slices compete for the ext cores only.
            let fam_ext_lat = pool_latency(&fam_ext, ext_cores.min(threads)) + sync;
            // FAM Base: scalar slices over all cores.
            let fam_base_lat =
                pool_latency(&fam_base, (base_cores + ext_cores).min(threads)) + sync;
            // MELF / Chimera: slices split across both pools, each running
            // the right variant.
            let melf_lat = hetero_latency(&melf, base_cores, ext_cores, threads) + sync;
            let chim_lat = hetero_latency(&chim, base_cores, ext_cores, threads) + sync;

            let basis = fam_ext_lat as f64;
            Fig14Point {
                threads,
                ratios: [
                    1.0,
                    basis / fam_base_lat as f64,
                    basis / melf_lat as f64,
                    basis / chim_lat as f64,
                ],
            }
        })
        .collect()
}

/// Latency of `slices` spread over `workers` identical cores (LPT-greedy).
fn pool_latency(slices: &[u64], workers: usize) -> u64 {
    let mut cores = vec![0u64; workers.max(1)];
    let mut sorted: Vec<u64> = slices.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    for s in sorted {
        let min = cores.iter_mut().min().expect("non-empty");
        *min += s;
    }
    cores.into_iter().max().unwrap_or(0)
}

/// Latency of `(ext_cost, base_cost)` slices over a heterogeneous pool:
/// greedy earliest-finish assignment.
fn hetero_latency(
    slices: &[(u64, u64)],
    base_cores: usize,
    ext_cores: usize,
    threads: usize,
) -> u64 {
    let ext_n = ext_cores.min(threads.div_ceil(2).max(1));
    let base_n = base_cores.min(threads - threads.div_ceil(2));
    let mut ext = vec![0u64; ext_n.max(1)];
    let mut base = vec![0u64; base_n.max(1)];
    let use_base = base_n > 0;
    let mut sorted: Vec<(u64, u64)> = slices.to_vec();
    sorted.sort_unstable_by_key(|&(e, _)| std::cmp::Reverse(e));
    for (e, b) in sorted {
        let ext_finish = *ext.iter().min().expect("non-empty") + e;
        let base_finish = *base.iter().min().expect("non-empty") + b;
        if use_base && base_finish < ext_finish {
            *base.iter_mut().min().expect("non-empty") += b;
        } else {
            *ext.iter_mut().min().expect("non-empty") += e;
        }
    }
    ext.into_iter()
        .chain(if use_base { base } else { vec![] })
        .max()
        .unwrap_or(0)
}

/// Formats a fraction as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig13_quick_smoke() {
        let row = fig13_row(&SPEC_PROFILES[4], Scale::quick());
        // CHBP (index 3) beats trap-based strawman (index 0).
        assert!(row.overhead[3] <= row.overhead[0] + 1e-9, "{row:?}");
    }

    #[test]
    fn table3_quick_smoke() {
        let row = table3_row(&SPEC_PROFILES[4], Scale::quick());
        assert!(row.smile > 0);
        assert!(row.dead_not_found.0 <= row.dead_not_found.1);
    }

    #[test]
    fn hetero_sweep_shape() {
        let pts = hetero_sweep(SystemKind::Chimera, InputVersion::Ext, Scale::quick());
        assert_eq!(pts.len(), 11);
        // Latency falls as the (faster) extension tasks dominate.
        assert!(pts[10].latency < pts[0].latency);
    }

    #[test]
    fn fig14_quick_smoke() {
        let pts = fig14_kernel(BlasKind::Dgemv, 12, &[2, 4], 4, 4);
        assert_eq!(pts.len(), 2);
        for p in &pts {
            assert!(p.ratios[3] > 0.5, "Chimera ratio sane: {p:?}");
        }
    }
}
