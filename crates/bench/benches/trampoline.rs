//! Micro-bench: the cost of one SMILE trampoline round trip vs a
//! trap-based trampoline round trip — the ratio behind Fig. 13.
//! Run with `cargo bench --features bench-harness --bench trampoline`.

use chimera_bench::harness::bench;
use chimera_isa::ExtSet;
use chimera_obj::{assemble, AsmOptions};
use chimera_rewrite::{chbp_rewrite, Mode, RewriteOptions};

const HOT: &str = "
    .data
    a: .dword 1
       .dword 2
       .dword 3
       .dword 4
    .text
    _start:
        li s0, 64
        la a0, a
        li t0, 4
    loop:
        vsetvli t1, t0, e64, m1, ta, ma
        vle64.v v1, (a0)
        addi s0, s0, -1
        bnez s0, loop
        li a0, 0
        li a7, 93
        ecall
";

fn measured_cycles(force_traps: bool) -> u64 {
    let bin = assemble(HOT, AsmOptions::default()).unwrap();
    let variant = chimera::empty_patch_with(
        if force_traps {
            chimera::RewriterKind::Strawman
        } else {
            chimera::RewriterKind::Chbp
        },
        &bin,
    )
    .unwrap();
    chimera::run_variant(&variant, ExtSet::RV64GCV, u64::MAX / 2)
        .unwrap()
        .cycles
}

fn main() {
    bench("trampoline/smile_roundtrip_run", 30, 7, || {
        std::hint::black_box(measured_cycles(false))
    });
    bench("trampoline/trap_roundtrip_run", 30, 7, || {
        std::hint::black_box(measured_cycles(true))
    });
    // Also report the simulated-cycle ratio once.
    let smile = measured_cycles(false);
    let trap = measured_cycles(true);
    println!(
        "simulated cycles: SMILE {smile}, trap {trap} ({:.1}x)",
        trap as f64 / smile as f64
    );
    // And the rewrite itself.
    let bin = assemble(HOT, AsmOptions::default()).unwrap();
    bench("trampoline/chbp_rewrite_small", 30, 7, || {
        chbp_rewrite(
            std::hint::black_box(&bin),
            ExtSet::RV64GCV,
            RewriteOptions {
                mode: Mode::EmptyPatch(chimera_isa::Ext::V),
                ..Default::default()
            },
        )
        .unwrap()
    });
}
