//! Micro-bench: host-side emulator throughput (instructions per second of
//! wall time) — the substrate's own speed, for context on harness runtimes.
//! Run with `cargo bench --features bench-harness --bench emulator`.
//!
//! Includes the decode-cache comparison: the same scalar loop with the
//! basic-block cache on vs off, with a cycle-accounting equality check
//! (the cache must change wall time only, never simulated results).

use chimera_bench::harness::{bench, report_throughput};
use chimera_isa::ExtSet;
use chimera_obj::{assemble, AsmOptions};

fn main() {
    let bin = assemble(
        "
        _start:
            li t0, 20000
            li a0, 0
        loop:
            addi a0, a0, 3
            xor a0, a0, t0
            addi t0, t0, -1
            bnez t0, loop
            li a7, 93
            ecall
        ",
        AsmOptions::default(),
    )
    .unwrap();
    let cached = chimera_emu::run_binary_with(&bin, ExtSet::RV64GCV, u64::MAX / 2, true).unwrap();
    let uncached =
        chimera_emu::run_binary_with(&bin, ExtSet::RV64GCV, u64::MAX / 2, false).unwrap();
    assert_eq!(
        cached, uncached,
        "decode cache must not change architectural results or cycle accounting"
    );
    let insts = cached.stats.instret;

    let t_on = bench("emulator/scalar_loop (cache on)", 50, 9, || {
        chimera_emu::run_binary_with(
            std::hint::black_box(&bin),
            ExtSet::RV64GCV,
            u64::MAX / 2,
            true,
        )
        .unwrap()
    });
    report_throughput("  -> dynamic insts/s", insts, t_on);
    let t_off = bench("emulator/scalar_loop (cache off)", 50, 9, || {
        chimera_emu::run_binary_with(
            std::hint::black_box(&bin),
            ExtSet::RV64GCV,
            u64::MAX / 2,
            false,
        )
        .unwrap()
    });
    report_throughput("  -> dynamic insts/s", insts, t_off);
    println!(
        "decode-cache speedup on scalar loop: {:.2}x",
        t_off.median_ns / t_on.median_ns
    );

    let vbin = assemble(
        "
        .data
        a: .dword 1
           .dword 2
           .dword 3
           .dword 4
        .text
        _start:
            li s0, 5000
            la a0, a
            li t0, 4
        loop:
            vsetvli t1, t0, e64, m1, ta, ma
            vle64.v v1, (a0)
            vadd.vv v2, v1, v1
            vse64.v v2, (a0)
            addi s0, s0, -1
            bnez s0, loop
            li a7, 93
            li a0, 0
            ecall
        ",
        AsmOptions::default(),
    )
    .unwrap();
    let vinsts = chimera_emu::run_binary(&vbin, u64::MAX / 2)
        .unwrap()
        .stats
        .instret;
    let tv = bench("emulator_vector/vector_loop", 50, 9, || {
        chimera_emu::run_binary(std::hint::black_box(&vbin), u64::MAX / 2).unwrap()
    });
    report_throughput("  -> dynamic insts/s", vinsts, tv);
}
