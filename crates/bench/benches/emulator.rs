//! Micro-bench: host-side emulator throughput (instructions per second of
//! wall time) — the substrate's own speed, for context on harness runtimes.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use chimera_obj::{assemble, AsmOptions};

fn bench(c: &mut Criterion) {
    let bin = assemble(
        "
        _start:
            li t0, 20000
            li a0, 0
        loop:
            addi a0, a0, 3
            xor a0, a0, t0
            addi t0, t0, -1
            bnez t0, loop
            li a7, 93
            ecall
        ",
        AsmOptions::default(),
    )
    .unwrap();
    let insts = chimera_emu::run_binary(&bin, u64::MAX / 2).unwrap().stats.instret;
    let mut g = c.benchmark_group("emulator");
    g.throughput(Throughput::Elements(insts));
    g.bench_function("scalar_loop", |b| {
        b.iter(|| chimera_emu::run_binary(std::hint::black_box(&bin), u64::MAX / 2).unwrap())
    });
    g.finish();

    let vbin = assemble(
        "
        .data
        a: .dword 1
           .dword 2
           .dword 3
           .dword 4
        .text
        _start:
            li s0, 5000
            la a0, a
            li t0, 4
        loop:
            vsetvli t1, t0, e64, m1, ta, ma
            vle64.v v1, (a0)
            vadd.vv v2, v1, v1
            vse64.v v2, (a0)
            addi s0, s0, -1
            bnez s0, loop
            li a7, 93
            li a0, 0
            ecall
        ",
        AsmOptions::default(),
    )
    .unwrap();
    let vinsts = chimera_emu::run_binary(&vbin, u64::MAX / 2).unwrap().stats.instret;
    let mut g = c.benchmark_group("emulator_vector");
    g.throughput(Throughput::Elements(vinsts));
    g.bench_function("vector_loop", |b| {
        b.iter(|| chimera_emu::run_binary(std::hint::black_box(&vbin), u64::MAX / 2).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
