//! Micro-bench: static rewriting throughput of CHBP and the regeneration
//! baselines over a mid-size SPEC-like binary (the paper's "40 minutes vs
//! 10 hours of compilation" angle: rewriting is cheap).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use chimera_isa::ExtSet;
use chimera_rewrite::{chbp_rewrite, regenerate, Flavor, Mode, RewriteOptions};
use chimera_workloads::speclike::{generate, GenOptions, SPEC_PROFILES};

fn bench(c: &mut Criterion) {
    let bin = generate(
        &SPEC_PROFILES[4],
        GenOptions {
            size_scale: 1.0 / 128.0,
            work_scale: 0.1,
            seed: 1,
        },
    );
    let code = bin.code_size();
    let mut g = c.benchmark_group("rewriting");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(code));
    g.bench_function("chbp_downgrade", |b| {
        b.iter(|| {
            chbp_rewrite(
                std::hint::black_box(&bin),
                ExtSet::RV64GC,
                RewriteOptions::default(),
            )
            .unwrap()
        })
    });
    g.bench_function("safer_regenerate", |b| {
        b.iter(|| {
            regenerate(
                std::hint::black_box(&bin),
                ExtSet::RV64GC,
                Mode::Downgrade,
                Flavor::Safer,
            )
            .unwrap()
        })
    });
    g.bench_function("armore_regenerate", |b| {
        b.iter(|| {
            regenerate(
                std::hint::black_box(&bin),
                ExtSet::RV64GC,
                Mode::Downgrade,
                Flavor::Armore,
            )
            .unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
