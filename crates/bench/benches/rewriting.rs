//! Micro-bench: static rewriting throughput of CHBP and the regeneration
//! baselines over a mid-size SPEC-like binary (the paper's "40 minutes vs
//! 10 hours of compilation" angle: rewriting is cheap).
//! Run with `cargo bench --features bench-harness --bench rewriting`.

use chimera_bench::harness::{bench, report_throughput};
use chimera_isa::ExtSet;
use chimera_rewrite::{chbp_rewrite, regenerate, Flavor, Mode, RewriteOptions};
use chimera_workloads::speclike::{generate, GenOptions, SPEC_PROFILES};

fn main() {
    let bin = generate(
        &SPEC_PROFILES[4],
        GenOptions {
            size_scale: 1.0 / 128.0,
            work_scale: 0.1,
            seed: 1,
        },
    );
    let code = bin.code_size();
    let t = bench("rewriting/chbp_downgrade", 30, 7, || {
        chbp_rewrite(
            std::hint::black_box(&bin),
            ExtSet::RV64GC,
            RewriteOptions::default(),
        )
        .unwrap()
    });
    report_throughput("  -> code bytes/s", code, t);
    bench("rewriting/safer_regenerate", 30, 7, || {
        regenerate(
            std::hint::black_box(&bin),
            ExtSet::RV64GC,
            Mode::Downgrade,
            Flavor::Safer,
        )
        .unwrap()
    });
    bench("rewriting/armore_regenerate", 30, 7, || {
        regenerate(
            std::hint::black_box(&bin),
            ExtSet::RV64GC,
            Mode::Downgrade,
            Flavor::Armore,
        )
        .unwrap()
    });
}
