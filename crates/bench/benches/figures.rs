//! Quick-scale wrappers of the figure harnesses, so `cargo bench` touches
//! every experiment path (full-scale runs live in the `fig*`/`table*`
//! binaries).

use criterion::{criterion_group, criterion_main, Criterion};
use chimera::{InputVersion, SystemKind};
use chimera_bench::{fig13_row, fig14_kernel, hetero_sweep, table3_row, Scale};
use chimera_workloads::blas::BlasKind;
use chimera_workloads::speclike::SPEC_PROFILES;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures_quick");
    g.sample_size(10);
    g.bench_function("fig11_one_system", |b| {
        b.iter(|| hetero_sweep(SystemKind::Chimera, InputVersion::Ext, Scale::quick()))
    });
    g.bench_function("fig13_one_row", |b| {
        b.iter(|| fig13_row(&SPEC_PROFILES[4], Scale::quick()))
    });
    g.bench_function("table3_one_row", |b| {
        b.iter(|| table3_row(&SPEC_PROFILES[4], Scale::quick()))
    });
    g.bench_function("fig14_one_point", |b| {
        b.iter(|| fig14_kernel(BlasKind::Dgemv, 12, &[4], 4, 4))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
