//! Quick-scale wrappers of the figure harnesses, so the bench target
//! touches every experiment path (full-scale runs live in the
//! `fig*`/`table*` binaries).
//! Run with `cargo bench --features bench-harness --bench figures`.

use chimera::{InputVersion, SystemKind};
use chimera_bench::harness::bench;
use chimera_bench::{fig13_row, fig14_kernel, hetero_sweep, table3_row, Scale};
use chimera_workloads::blas::BlasKind;
use chimera_workloads::speclike::SPEC_PROFILES;

fn main() {
    bench("figures_quick/fig11_one_system", 100, 5, || {
        hetero_sweep(SystemKind::Chimera, InputVersion::Ext, Scale::quick())
    });
    bench("figures_quick/fig13_one_row", 100, 5, || {
        fig13_row(&SPEC_PROFILES[4], Scale::quick())
    });
    bench("figures_quick/table3_one_row", 100, 5, || {
        table3_row(&SPEC_PROFILES[4], Scale::quick())
    });
    bench("figures_quick/fig14_one_point", 100, 5, || {
        fig14_kernel(BlasKind::Dgemv, 12, &[4], 4, 4)
    });
}
