//! Named monotonic counters and log2-bucketed histograms.
//!
//! Registration (name lookup) takes a mutex; the returned [`Counter`] and
//! [`Histogram`] handles are plain atomics, so hot sites register once and
//! increment lock-free afterwards. The registry is shared by cloning.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of log2 buckets: bucket 0 holds the value 0, bucket `i >= 1`
/// holds values in `[2^(i-1), 2^i)`; the last bucket tops out at `u64`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A monotonic counter handle (lock-free).
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

struct HistogramInner {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

/// A log2-bucketed histogram handle (lock-free).
#[derive(Clone)]
pub struct Histogram(Arc<HistogramInner>);

/// The bucket index a value lands in.
fn bucket_of(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

impl Histogram {
    /// Records one observation.
    pub fn record(&self, value: u64) {
        self.0.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Non-empty buckets as `(lower_bound, count)` pairs, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.0
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                if n == 0 {
                    return None;
                }
                let lo = if i == 0 { 0 } else { 1u64 << (i - 1) };
                Some((lo, n))
            })
            .collect()
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: Mutex<BTreeMap<String, Counter>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

/// A registry of named counters and histograms.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<RegistryInner>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let counters = self.counter_snapshot();
        write!(f, "MetricsRegistry({} counters)", counters.len())
    }
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Returns (registering if new) the named counter.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.inner.counters.lock().expect("metrics poisoned");
        map.entry(name.to_string())
            .or_insert_with(|| Counter(Arc::new(AtomicU64::new(0))))
            .clone()
    }

    /// Returns (registering if new) the named histogram.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self.inner.histograms.lock().expect("metrics poisoned");
        map.entry(name.to_string())
            .or_insert_with(|| {
                Histogram(Arc::new(HistogramInner {
                    buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                    count: AtomicU64::new(0),
                    sum: AtomicU64::new(0),
                }))
            })
            .clone()
    }

    /// The named counter's value, if it was ever registered.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.inner
            .counters
            .lock()
            .expect("metrics poisoned")
            .get(name)
            .map(|c| c.get())
    }

    /// A sorted snapshot of every counter.
    pub fn counter_snapshot(&self) -> Vec<(String, u64)> {
        self.inner
            .counters
            .lock()
            .expect("metrics poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// A sorted snapshot of every histogram:
    /// `(name, count, sum, non-empty buckets)`.
    #[allow(clippy::type_complexity)]
    pub fn histogram_snapshot(&self) -> Vec<(String, u64, u64, Vec<(u64, u64)>)> {
        self.inner
            .histograms
            .lock()
            .expect("metrics poisoned")
            .iter()
            .map(|(k, h)| (k.clone(), h.count(), h.sum(), h.nonzero_buckets()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_bucketing() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    #[test]
    fn counters_are_shared_by_name() {
        let m = MetricsRegistry::new();
        let a = m.counter("x");
        let b = m.counter("x");
        a.add(3);
        b.inc();
        assert_eq!(m.counter_value("x"), Some(4));
        assert_eq!(m.counter_value("y"), None);
    }

    #[test]
    fn histogram_snapshot_reports_bounds() {
        let m = MetricsRegistry::new();
        let h = m.histogram("lat");
        h.record(0);
        h.record(5);
        h.record(5);
        h.record(800);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 810);
        // 0 -> bucket 0 (lo 0); 5 -> [4,8) (lo 4); 800 -> [512,1024).
        assert_eq!(h.nonzero_buckets(), vec![(0, 1), (4, 2), (512, 1)]);
    }
}
