//! Hand-rolled JSON export (the workspace is registry-dependency-free, so
//! no serde) plus a compact text summary.
//!
//! The schema of a `results/trace-*.json` dump:
//!
//! ```json
//! {
//!   "name": "hetero",
//!   "dropped": 0,
//!   "events": [
//!     {"hart": 0, "seq": 0, "cycles": 0, "type": "RewritePassDone",
//!      "pass": "disassemble", "nanos": 1234, "items": 56},
//!     {"hart": 0, "seq": 7, "cycles": 4100, "type": "Trap",
//!      "pc": 65588, "kind": "illegal"}
//!   ],
//!   "counters": {"kernel.smile_faults": 1},
//!   "histograms": {
//!     "kernel.fault_cycles": {"count": 1, "sum": 800,
//!                             "buckets": [[512, 1]]}
//!   }
//! }
//! ```
//!
//! Addresses and cycle counts are plain JSON numbers (all values in this
//! codebase stay far below 2^53).

use crate::event::{TraceEvent, TraceRecord};
use crate::metrics::MetricsRegistry;
use std::fmt::Write as _;

fn escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn event_fields(e: &TraceEvent, out: &mut String) {
    match *e {
        TraceEvent::BlockBuilt { pc, insts } => {
            let _ = write!(out, "\"pc\": {pc}, \"insts\": {insts}");
        }
        TraceEvent::CacheInvalidate { pc } => {
            let _ = write!(out, "\"pc\": {pc}");
        }
        TraceEvent::BlockChained { from, to } => {
            let _ = write!(out, "\"from\": {from}, \"to\": {to}");
        }
        TraceEvent::TierPromote { pc, bytes } => {
            let _ = write!(out, "\"pc\": {pc}, \"bytes\": {bytes}");
        }
        TraceEvent::Trap { pc, kind } => {
            let _ = write!(out, "\"pc\": {pc}, \"kind\": \"{}\"", kind.name());
        }
        TraceEvent::SmileFaultRecovered {
            fault_addr,
            redirect,
        } => {
            let _ = write!(
                out,
                "\"fault_addr\": {fault_addr}, \"redirect\": {redirect}"
            );
        }
        TraceEvent::LazyRewrite { pc, block } => {
            let _ = write!(out, "\"pc\": {pc}, \"block\": {block}");
        }
        TraceEvent::TaskMigrated { task, from_base } => {
            let _ = write!(out, "\"task\": {task}, \"from_base\": {from_base}");
        }
        TraceEvent::TaskScheduled {
            task,
            on_ext,
            stolen,
        } => {
            let _ = write!(
                out,
                "\"task\": {task}, \"on_ext\": {on_ext}, \"stolen\": {stolen}"
            );
        }
        TraceEvent::StealAttempt {
            worker,
            from_ext,
            success,
        } => {
            let _ = write!(
                out,
                "\"worker\": {worker}, \"from_ext\": {from_ext}, \"success\": {success}"
            );
        }
        TraceEvent::RewritePassDone { pass, nanos, items } => {
            let _ = write!(
                out,
                "\"pass\": \"{}\", \"nanos\": {nanos}, \"items\": {items}",
                pass.name()
            );
        }
        TraceEvent::RewriteIncremental {
            units_total,
            units_redone,
            nanos,
        } => {
            let _ = write!(
                out,
                "\"units_total\": {units_total}, \"units_redone\": {units_redone}, \"nanos\": {nanos}"
            );
        }
        TraceEvent::VariantShared { key, hits } => {
            let _ = write!(out, "\"key\": {key}, \"hits\": {hits}");
        }
        TraceEvent::SlotRecycled {
            hart,
            restored_bytes,
        } => {
            let _ = write!(
                out,
                "\"hart\": {hart}, \"restored_bytes\": {restored_bytes}"
            );
        }
    }
}

/// Serializes a drained trace plus its metrics registry.
pub fn export_json(
    name: &str,
    records: &[TraceRecord],
    metrics: Option<&MetricsRegistry>,
    dropped: u64,
) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"name\": \"");
    escape(name, &mut out);
    let _ = writeln!(out, "\",\n  \"dropped\": {dropped},");
    out.push_str("  \"events\": [\n");
    for (i, r) in records.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"hart\": {}, \"seq\": {}, \"cycles\": {}, \"type\": \"{}\", ",
            r.hart,
            r.seq,
            r.cycles,
            r.event.kind()
        );
        event_fields(&r.event, &mut out);
        out.push_str(if i + 1 == records.len() {
            "}\n"
        } else {
            "},\n"
        });
    }
    out.push_str("  ],\n  \"counters\": {");
    let counters = metrics.map(|m| m.counter_snapshot()).unwrap_or_default();
    for (i, (name, v)) in counters.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str("    \"");
        escape(name, &mut out);
        let _ = write!(out, "\": {v}");
    }
    out.push_str("\n  },\n  \"histograms\": {");
    let hists = metrics.map(|m| m.histogram_snapshot()).unwrap_or_default();
    for (i, (name, count, sum, buckets)) in hists.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str("    \"");
        escape(name, &mut out);
        let _ = write!(
            out,
            "\": {{\"count\": {count}, \"sum\": {sum}, \"buckets\": ["
        );
        for (j, (lo, n)) in buckets.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "[{lo}, {n}]");
        }
        out.push_str("]}");
    }
    out.push_str("\n  }\n}\n");
    out
}

/// A compact human-readable summary: per-type event counts, then counters.
pub fn summarize(records: &[TraceRecord], metrics: Option<&MetricsRegistry>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "trace: {} events", records.len());
    for kind in TraceEvent::KINDS {
        let n = records.iter().filter(|r| r.event.kind() == kind).count();
        if n > 0 {
            let _ = writeln!(out, "  {kind:<20} {n}");
        }
    }
    if let Some(m) = metrics {
        let counters = m.counter_snapshot();
        if !counters.is_empty() {
            let _ = writeln!(out, "counters:");
            for (name, v) in counters {
                let _ = writeln!(out, "  {name:<28} {v}");
            }
        }
        for (name, count, sum, _) in m.histogram_snapshot() {
            let mean = sum.checked_div(count).unwrap_or(0);
            let _ = writeln!(out, "histogram {name}: n={count} sum={sum} mean={mean}");
        }
    }
    out
}
