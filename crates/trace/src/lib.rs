//! # chimera-trace
//!
//! A zero-dependency tracing and metrics layer for the Chimera runtime
//! (see DESIGN.md §"Observability").
//!
//! Three pieces:
//!
//! * **[`Tracer`]** — the handle instrumented components (the emulator's
//!   CPU, the kernel runner, the scheduler, the rewriter) hold. Disabled —
//!   the default everywhere — every operation is a branch over a `None`;
//!   enabled, typed [`TraceEvent`]s flow into a [`TraceSink`]. The default
//!   sink ([`RingSink`]) buffers records in fixed-capacity per-thread
//!   rings and merges them under a mutex only on ring fill, thread exit,
//!   or [`Tracer::drain`].
//! * **[`MetricsRegistry`]** — named monotonic [`Counter`]s and
//!   log2-bucketed [`Histogram`]s (migration, fault-handling and
//!   rewrite-pass latencies). Handles are plain atomics after a one-time
//!   registration, and unlike ring records they are never dropped, so they
//!   reconcile exactly against the kernel's `FaultCounters` and the
//!   emulator's `CacheStats`.
//! * **[`export_json`] / [`summarize`]** — the `results/trace-*.json`
//!   dump format and a compact text digest.
//!
//! Event timestamps are *simulated* cycles from the emulator's
//! deterministic cost model, supplied by each recording site — so traces
//! of deterministic runs are deterministic too (rewrite-time events carry
//! wall-clock durations in their payload instead; their timestamp is 0).
//!
//! This crate sits below every other chimera crate (it depends on nothing
//! but `std`), which is what lets the emulator, kernel and rewriter all
//! share one event vocabulary without dependency cycles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod json;
mod metrics;
mod sink;

pub use event::{RewritePass, TraceEvent, TraceRecord, TrapKind};
pub use json::{export_json, summarize};
pub use metrics::{Counter, Histogram, MetricsRegistry, HISTOGRAM_BUCKETS};
pub use sink::{
    HartRings, RingSink, TraceSink, Tracer, VecSink, HART_RING_CAPACITY, RING_CAPACITY,
};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn ev(pc: u64) -> TraceEvent {
        TraceEvent::BlockBuilt { pc, insts: 1 }
    }

    #[test]
    fn disabled_tracer_is_inert() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        t.record(0, ev(1));
        t.count("x", 3);
        t.observe("h", 5);
        assert!(t.drain().is_empty());
        assert!(t.metrics().is_none());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn records_drain_in_sequence_order() {
        let t = Tracer::enabled();
        for pc in 0..10 {
            t.record(pc * 100, ev(pc));
        }
        let recs = t.drain();
        assert_eq!(recs.len(), 10);
        for (i, r) in recs.iter().enumerate() {
            assert_eq!(r.seq, i as u64);
            assert_eq!(r.cycles, i as u64 * 100);
        }
        // Drain empties.
        assert!(t.drain().is_empty());
    }

    #[test]
    fn ring_flushes_on_fill() {
        let t = Tracer::with_sink(Arc::new(RingSink::with_capacity(4)));
        for pc in 0..11 {
            t.record(0, ev(pc));
        }
        assert_eq!(t.drain().len(), 11);
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn cross_thread_records_merge_on_thread_exit() {
        let t = Tracer::with_sink(Arc::new(RingSink::with_capacity(64)));
        let mut handles = Vec::new();
        for i in 0..4u64 {
            let t2 = t.clone();
            handles.push(std::thread::spawn(move || {
                for j in 0..100 {
                    t2.record(j, ev(i * 1000 + j));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        t.record(0, ev(9999));
        let recs = t.drain();
        assert_eq!(recs.len(), 401);
        // Sequence numbers are a total order: all distinct.
        let mut seqs: Vec<u64> = recs.iter().map(|r| r.seq).collect();
        seqs.dedup();
        assert_eq!(seqs.len(), 401);
    }

    #[test]
    fn ring_and_vec_sinks_agree() {
        let run = |t: &Tracer| {
            for pc in 0..50 {
                t.record(pc, ev(pc));
            }
            t.drain()
        };
        let ring = run(&Tracer::with_sink(Arc::new(RingSink::with_capacity(8))));
        let vec = run(&Tracer::with_sink(Arc::new(VecSink::new())));
        assert_eq!(ring, vec);
    }

    #[test]
    fn tracer_clones_share_state() {
        let t = Tracer::enabled();
        let t2 = t.clone();
        t.record(1, ev(1));
        t2.record(2, ev(2));
        t2.count("shared", 1);
        t.count("shared", 1);
        assert_eq!(t.drain().len(), 2);
        assert_eq!(t.metrics().unwrap().counter_value("shared"), Some(2));
    }

    #[test]
    fn json_export_is_well_formed() {
        let t = Tracer::enabled();
        t.record(
            100,
            TraceEvent::Trap {
                pc: 0x1000,
                kind: TrapKind::Ecall,
            },
        );
        t.record(
            200,
            TraceEvent::RewritePassDone {
                pass: RewritePass::Plan,
                nanos: 42,
                items: 7,
            },
        );
        t.count("kernel.smile_faults", 2);
        t.observe("kernel.fault_cycles", 800);
        let recs = t.drain();
        let js = export_json("unit \"quoted\"", &recs, t.metrics(), t.dropped());
        assert!(js.contains("\"type\": \"Trap\""));
        assert!(js.contains("\"kind\": \"ecall\""));
        assert!(js.contains("\"pass\": \"plan\""));
        assert!(js.contains("\"kernel.smile_faults\": 2"));
        assert!(js.contains("\\\"quoted\\\""));
        assert!(js.contains("[512, 1]"));
        // Balanced braces/brackets (cheap well-formedness check).
        let opens = js.matches(['{', '[']).count();
        let closes = js.matches(['}', ']']).count();
        assert_eq!(opens, closes);
        let summary = summarize(&recs, t.metrics());
        assert!(summary.contains("Trap"));
        assert!(summary.contains("kernel.smile_faults"));
    }

    #[test]
    fn hart_ring_survives_cross_worker_migration() {
        // Regression: the per-thread rings of `RingSink` assume a hart
        // stays on one OS thread. Under the fiber scheduler a hart is
        // suspended on one worker and resumed on another; its records
        // must land in the *hart's* ring regardless.
        let sink = Arc::new(HartRings::with_capacity(1024));
        let root = Tracer::with_sink(sink.clone());
        let hart3 = root.for_hart(3);
        let hart5 = root.for_hart(5);

        // Slice 1 of each hart on worker A, slice 2 on worker B —
        // a forced cross-worker migration between the slices.
        for (tracer, base) in [(&hart3, 0u64), (&hart5, 100)] {
            let t = tracer.clone();
            std::thread::spawn(move || {
                for j in 0..10 {
                    t.record(base + j, ev(base + j));
                }
            })
            .join()
            .unwrap();
        }
        for (tracer, base) in [(&hart3, 10u64), (&hart5, 110)] {
            let t = tracer.clone();
            std::thread::spawn(move || {
                for j in 0..10 {
                    t.record(base + j, ev(base + j));
                }
            })
            .join()
            .unwrap();
        }

        // Both slices landed in the same per-hart ring, in order.
        let ring3 = sink.ring(3);
        assert_eq!(ring3.len(), 20);
        for (i, r) in ring3.iter().enumerate() {
            assert_eq!((r.hart, r.seq, r.cycles), (3, i as u64, i as u64));
        }
        assert_eq!(sink.harts(), vec![3, 5]);

        // The drain keeps each hart's stream contiguous and ordered.
        let recs = root.drain();
        assert_eq!(recs.len(), 40);
        let keys: Vec<(u64, u64)> = recs.iter().map(|r| (r.hart, r.seq)).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
        assert_eq!(root.dropped(), 0);
    }

    #[test]
    fn for_hart_streams_share_sink_and_metrics() {
        let t = Tracer::enabled();
        let a = t.for_hart(1);
        let b = t.for_hart(2);
        // Per-hart sequence counters are independent and start at 0.
        a.record(10, ev(1));
        b.record(20, ev(2));
        a.record(30, ev(3));
        a.count("hart.work", 1);
        b.count("hart.work", 2);
        let recs = t.drain();
        assert_eq!(recs.len(), 3);
        assert_eq!((recs[0].hart, recs[0].seq), (1, 0));
        assert_eq!((recs[1].hart, recs[1].seq), (1, 1));
        assert_eq!((recs[2].hart, recs[2].seq), (2, 0));
        // Metrics are shared with the root handle.
        assert_eq!(t.metrics().unwrap().counter_value("hart.work"), Some(3));
        // Deriving from a disabled tracer stays disabled.
        assert!(!Tracer::disabled().for_hart(7).is_enabled());
    }

    #[test]
    fn hart_ring_overflow_counts_drops() {
        let sink = Arc::new(HartRings::with_capacity(4));
        let t = Tracer::with_sink(sink.clone()).for_hart(9);
        for pc in 0..10 {
            t.record(0, ev(pc));
        }
        assert_eq!(t.dropped(), 6);
        assert_eq!(sink.ring(9).len(), 4);
    }

    #[test]
    fn merged_buffer_overflow_counts_drops() {
        // Capacity-1 rings flush every record straight into the merged
        // buffer; the merged cap is enormous, so emulate overflow via the
        // ring test knob instead: record far fewer than the cap and just
        // assert the accounting API exists and stays at zero.
        let t = Tracer::with_sink(Arc::new(RingSink::with_capacity(1)));
        for pc in 0..100 {
            t.record(0, ev(pc));
        }
        assert_eq!(t.dropped(), 0);
        assert_eq!(t.drain().len(), 100);
    }
}
