//! The typed event taxonomy shared by the emulator, kernel and rewriter.
//!
//! Events are deliberately coarse: one per basic-block build, trap, fault
//! recovery, scheduling decision or rewrite pass — never one per retired
//! instruction — so an enabled tracer stays within its overhead budget.

/// Why a trap was delivered (a dependency-free mirror of
/// `chimera_emu::Trap`, so this crate can sit below the emulator in the
/// dependency graph).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrapKind {
    /// Illegal instruction (undecodable, reserved, or extension-gated).
    Illegal,
    /// Fetch from non-executable memory — the deterministic SMILE fault.
    MemFetch,
    /// Data load fault.
    MemLoad,
    /// Data store fault.
    MemStore,
    /// `ebreak` (trap-based trampolines).
    Breakpoint,
    /// `ecall` (system call).
    Ecall,
}

impl TrapKind {
    /// Short identifier for the JSON export.
    pub fn name(self) -> &'static str {
        match self {
            TrapKind::Illegal => "illegal",
            TrapKind::MemFetch => "mem_fetch",
            TrapKind::MemLoad => "mem_load",
            TrapKind::MemStore => "mem_store",
            TrapKind::Breakpoint => "breakpoint",
            TrapKind::Ecall => "ecall",
        }
    }
}

/// A stage of the unified `RewriteEngine` pass pipeline
/// (`scan → plan → transform → place → link → verify`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RewritePass {
    /// Input validation + analyses (disassembly, CFG, liveness) + unit
    /// partitioning and size measurement.
    Scan,
    /// Sequential deterministic layout: final target-section addresses,
    /// entry kinds and text patches for every unit.
    Plan,
    /// Per-unit code emission at the planned final addresses (the
    /// parallel stage).
    Transform,
    /// Target-section assembly: unit bytes + padding gaps, fault-table
    /// and statistics merge in unit order.
    Place,
    /// Text patching, target-section attachment, entry/profile fixup.
    Link,
    /// Output-binary validation.
    Verify,
}

impl RewritePass {
    /// Short identifier for the JSON export.
    pub fn name(self) -> &'static str {
        match self {
            RewritePass::Scan => "scan",
            RewritePass::Plan => "plan",
            RewritePass::Transform => "transform",
            RewritePass::Place => "place",
            RewritePass::Link => "link",
            RewritePass::Verify => "verify",
        }
    }
}

/// One traced occurrence. Every variant carries enough payload to be
/// useful on its own in a `results/trace-*.json` dump.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// The decode cache built (and inserted) a basic block.
    BlockBuilt {
        /// Block start pc.
        pc: u64,
        /// Decoded instructions in the block.
        insts: u64,
    },
    /// A cached block was dropped because its region fingerprint went
    /// stale (lazy rewriting, MMView remap, or guest self-modification).
    CacheInvalidate {
        /// The pc whose lookup found the stale block.
        pc: u64,
    },
    /// The execution engine chained two cached blocks: a static control-
    /// flow edge's successor slot was recorded, so later executions follow
    /// the link instead of dispatching. Emitted once per created link (a
    /// cold event — follows themselves are only counted, never traced).
    BlockChained {
        /// Source block start pc.
        from: u64,
        /// Target block start pc.
        to: u64,
    },
    /// The JIT tier promoted a hot block body to compiled host code.
    /// Emitted once per compilation (re-promotions after an SMC sever
    /// emit again — byte-identical code, same event).
    TierPromote {
        /// Block start pc.
        pc: u64,
        /// Emitted host-code bytes.
        bytes: u64,
    },
    /// A trap was delivered to the kernel.
    Trap {
        /// Trapping pc (fetch-fault address for fetch faults).
        pc: u64,
        /// Trap class.
        kind: TrapKind,
    },
    /// The passive fault handler recovered a deterministic SMILE fault.
    SmileFaultRecovered {
        /// The overwritten-instruction address the fault encoded.
        fault_addr: u64,
        /// Where execution was redirected (the instruction's copy).
        redirect: u64,
    },
    /// The kernel lazily rewrote an instruction the static pass missed.
    LazyRewrite {
        /// The faulting site that was patched.
        pc: u64,
        /// The freshly emitted block's address.
        block: u64,
    },
    /// A task migrated across core pools (FAM fault-and-migrate).
    TaskMigrated {
        /// Task index.
        task: u64,
        /// True when the migration left a base core for the ext pool.
        from_base: bool,
    },
    /// A task started executing on a core.
    TaskScheduled {
        /// Task index.
        task: u64,
        /// True when the executing core is in the extension pool.
        on_ext: bool,
        /// Whether the core took the task from the other pool's queue.
        stolen: bool,
    },
    /// A worker probed the other pool's queue for work.
    StealAttempt {
        /// Worker (core) index.
        worker: u64,
        /// True when the victim queue was the extension pool's.
        from_ext: bool,
        /// Whether a task was actually taken.
        success: bool,
    },
    /// A rewriting pass finished.
    RewritePassDone {
        /// Which pass.
        pass: RewritePass,
        /// Wall-clock duration in nanoseconds.
        nanos: u64,
        /// Pass-specific work-item count (instructions, sites, patches…).
        items: u64,
    },
    /// An incremental re-rewrite finished: only the units whose source
    /// ranges intersected a dirty region were re-emitted; every other
    /// unit's bytes were reused verbatim from the per-unit cache.
    RewriteIncremental {
        /// Units in the partition.
        units_total: u64,
        /// Units re-scanned and re-transformed (dirty).
        units_redone: u64,
        /// Wall-clock duration of the whole incremental run, nanoseconds.
        nanos: u64,
    },
    /// A content-addressed rewrite variant was served from the shared
    /// cross-process cache instead of being rewritten again.
    VariantShared {
        /// The variant's content key.
        key: u64,
        /// Cumulative hits this entry has served (including this one).
        hits: u64,
    },
    /// A pooled guest-memory slot was returned and restored from its
    /// master image — only the spans the run dirtied were copied back.
    SlotRecycled {
        /// The hart/process the slot served.
        hart: u64,
        /// Bytes restored from the master image.
        restored_bytes: u64,
    },
}

impl TraceEvent {
    /// The event-type tag used in JSON dumps and summaries.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::BlockBuilt { .. } => "BlockBuilt",
            TraceEvent::CacheInvalidate { .. } => "CacheInvalidate",
            TraceEvent::BlockChained { .. } => "BlockChained",
            TraceEvent::TierPromote { .. } => "TierPromote",
            TraceEvent::Trap { .. } => "Trap",
            TraceEvent::SmileFaultRecovered { .. } => "SmileFaultRecovered",
            TraceEvent::LazyRewrite { .. } => "LazyRewrite",
            TraceEvent::TaskMigrated { .. } => "TaskMigrated",
            TraceEvent::TaskScheduled { .. } => "TaskScheduled",
            TraceEvent::StealAttempt { .. } => "StealAttempt",
            TraceEvent::RewritePassDone { .. } => "RewritePassDone",
            TraceEvent::RewriteIncremental { .. } => "RewriteIncremental",
            TraceEvent::VariantShared { .. } => "VariantShared",
            TraceEvent::SlotRecycled { .. } => "SlotRecycled",
        }
    }

    /// Every event-type tag, in a fixed order (used by coverage checks).
    pub const KINDS: [&'static str; 14] = [
        "BlockBuilt",
        "CacheInvalidate",
        "BlockChained",
        "TierPromote",
        "Trap",
        "SmileFaultRecovered",
        "LazyRewrite",
        "TaskMigrated",
        "TaskScheduled",
        "StealAttempt",
        "RewritePassDone",
        "RewriteIncremental",
        "VariantShared",
        "SlotRecycled",
    ];
}

/// A recorded event: the payload plus the guest hart it belongs to, a
/// per-hart sequence number, and a simulated-cycle timestamp supplied by
/// the recording site (the emulator's cost-model clock; 0 for rewrite-time
/// events, which predate execution).
///
/// The stream identity is the *hart*, never the recording OS thread: a
/// fiber suspended on one host worker and resumed on another keeps
/// appending to the same `(hart, seq)` stream, so drains are stable under
/// fiber migration. Single-hart components record through the root
/// [`crate::Tracer`] handle, whose stream is hart 0 with one global
/// sequence counter — for those, `seq` is a total order as before.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Owning guest hart (0 for the root handle).
    pub hart: u64,
    /// Sequence number within the hart's stream (drain order).
    pub seq: u64,
    /// Simulated cycles at record time.
    pub cycles: u64,
    /// The event.
    pub event: TraceEvent,
}
