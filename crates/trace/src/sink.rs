//! The tracer handle and its sinks.
//!
//! [`Tracer`] is the handle every instrumented component holds. Disabled
//! (the default) it is a `None` and [`Tracer::record`] is a single branch
//! — cheap enough to leave in release builds unconditionally. Enabled, it
//! forwards to a [`TraceSink`].
//!
//! The default sink, [`RingSink`], is lock-light: each OS thread buffers
//! records in a private fixed-capacity ring (a `thread_local`), and the
//! shared mutex is taken only when a ring fills, when its thread exits, or
//! on [`TraceSink::drain`] — never per record. The merged buffer is itself
//! bounded; overflow drops the newest records and counts them, so a
//! runaway event source degrades the trace instead of memory.

use crate::event::{TraceEvent, TraceRecord};
use crate::metrics::MetricsRegistry;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Where enabled tracers deliver records.
pub trait TraceSink: Send + Sync {
    /// Accepts one record (called from any thread).
    fn record(&self, rec: TraceRecord);
    /// Removes and returns everything recorded so far, ordered by
    /// `(hart, seq)` — each hart's stream contiguous and in its own
    /// sequence order, streams concatenated by hart id.
    ///
    /// Rings belonging to *other* threads flush on fill or thread exit;
    /// drain after joining worker threads to observe their tail records.
    fn drain(&self) -> Vec<TraceRecord>;
    /// Records dropped due to buffer overflow (0 for unbounded sinks).
    fn dropped(&self) -> u64 {
        0
    }
}

/// Default capacity of each per-thread ring, in records.
pub const RING_CAPACITY: usize = 1024;

/// Cap on the merged buffer, in records. Generous for every workload in
/// this repo; the bound exists so tracing can never exhaust memory.
const MAX_MERGED: usize = 1 << 20;

/// Identity + shared state of one [`RingSink`].
struct RingShared {
    /// Distinguishes sinks inside the per-thread registry.
    id: u64,
    capacity: usize,
    merged: Mutex<Vec<TraceRecord>>,
    dropped: AtomicU64,
}

impl RingShared {
    fn flush_from(&self, buf: &mut Vec<TraceRecord>) {
        if buf.is_empty() {
            return;
        }
        // `into_inner` on poison: flushing from a thread-exit destructor
        // must not double-panic.
        let mut merged = self
            .merged
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let room = MAX_MERGED.saturating_sub(merged.len());
        if buf.len() > room {
            self.dropped
                .fetch_add((buf.len() - room) as u64, Ordering::Relaxed);
            buf.truncate(room);
        }
        merged.append(buf);
    }
}

/// One thread's private ring for one sink. Dropping it (thread exit or
/// registry pruning) flushes the tail into the shared buffer.
struct ThreadRing {
    shared: Arc<RingShared>,
    buf: Vec<TraceRecord>,
}

impl ThreadRing {
    fn push(&mut self, rec: TraceRecord) {
        self.buf.push(rec);
        if self.buf.len() >= self.shared.capacity {
            self.shared.flush_from(&mut self.buf);
        }
    }
}

impl Drop for ThreadRing {
    fn drop(&mut self) {
        self.shared.flush_from(&mut self.buf);
    }
}

thread_local! {
    /// This thread's rings, one per live sink it has recorded into.
    static RINGS: RefCell<Vec<ThreadRing>> = const { RefCell::new(Vec::new()) };
}

/// The default lock-light sink: per-thread rings merged on drain.
pub struct RingSink {
    shared: Arc<RingShared>,
}

impl RingSink {
    /// Creates a sink with the given per-thread ring capacity.
    pub fn with_capacity(capacity: usize) -> RingSink {
        static NEXT_ID: AtomicU64 = AtomicU64::new(0);
        RingSink {
            shared: Arc::new(RingShared {
                id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
                capacity: capacity.max(1),
                merged: Mutex::new(Vec::new()),
                dropped: AtomicU64::new(0),
            }),
        }
    }

    /// Creates a sink with [`RING_CAPACITY`].
    pub fn new() -> RingSink {
        RingSink::with_capacity(RING_CAPACITY)
    }
}

impl Default for RingSink {
    fn default() -> Self {
        RingSink::new()
    }
}

impl TraceSink for RingSink {
    fn record(&self, rec: TraceRecord) {
        RINGS.with(|cell| {
            let mut rings = cell.borrow_mut();
            // Prune rings whose sink died (this thread holds the last Arc);
            // their Drop flushes any tail into the abandoned buffer.
            rings.retain(|r| Arc::strong_count(&r.shared) > 1 || r.shared.id == self.shared.id);
            match rings.iter_mut().find(|r| r.shared.id == self.shared.id) {
                Some(ring) => ring.push(rec),
                None => {
                    let mut ring = ThreadRing {
                        shared: Arc::clone(&self.shared),
                        buf: Vec::with_capacity(self.shared.capacity),
                    };
                    ring.push(rec);
                    rings.push(ring);
                }
            }
        });
    }

    fn drain(&self) -> Vec<TraceRecord> {
        // Flush the calling thread's own ring first.
        RINGS.with(|cell| {
            let mut rings = cell.borrow_mut();
            if let Some(ring) = rings.iter_mut().find(|r| r.shared.id == self.shared.id) {
                let shared = Arc::clone(&ring.shared);
                shared.flush_from(&mut ring.buf);
            }
        });
        let mut v = std::mem::take(
            &mut *self
                .shared
                .merged
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner()),
        );
        v.sort_by_key(|r| (r.hart, r.seq));
        v
    }

    fn dropped(&self) -> u64 {
        self.shared.dropped.load(Ordering::Relaxed)
    }
}

/// How many locks [`HartRings`] stripes its shards over.
const HART_STRIPES: usize = 64;

/// Default per-hart ring capacity for [`HartRings`], in records.
pub const HART_RING_CAPACITY: usize = 1 << 14;

/// A hart-keyed sink: each record is appended to the ring of the *hart*
/// that produced it, never the recording OS thread. A fiber suspended on
/// one host worker and resumed on another keeps appending to the same
/// ring, so fiber migration can't scramble or split a hart's stream (the
/// failure mode of [`RingSink`]'s thread-local rings under a fiber
/// scheduler). Rings are created on first record; locks are striped by
/// hart id so concurrent harts rarely contend.
pub struct HartRings {
    stripes: [Mutex<BTreeMap<u64, Vec<TraceRecord>>>; HART_STRIPES],
    per_hart: usize,
    dropped: AtomicU64,
}

impl HartRings {
    /// Creates a sink with the given per-hart ring capacity; a ring that
    /// fills drops the newest records and counts them.
    pub fn with_capacity(per_hart: usize) -> HartRings {
        HartRings {
            stripes: std::array::from_fn(|_| Mutex::new(BTreeMap::new())),
            per_hart: per_hart.max(1),
            dropped: AtomicU64::new(0),
        }
    }

    /// Creates a sink with [`HART_RING_CAPACITY`] records per hart.
    pub fn new() -> HartRings {
        HartRings::with_capacity(HART_RING_CAPACITY)
    }

    /// Snapshot of one hart's ring, in sequence order (empty when the
    /// hart never recorded).
    pub fn ring(&self, hart: u64) -> Vec<TraceRecord> {
        let stripe = self.stripes[(hart as usize) % HART_STRIPES]
            .lock()
            .expect("sink poisoned");
        let mut v = stripe.get(&hart).cloned().unwrap_or_default();
        v.sort_by_key(|r| r.seq);
        v
    }

    /// Hart ids that have recorded at least once, ascending.
    pub fn harts(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = Vec::new();
        for stripe in &self.stripes {
            ids.extend(stripe.lock().expect("sink poisoned").keys().copied());
        }
        ids.sort_unstable();
        ids
    }
}

impl Default for HartRings {
    fn default() -> Self {
        HartRings::new()
    }
}

impl TraceSink for HartRings {
    fn record(&self, rec: TraceRecord) {
        let mut stripe = self.stripes[(rec.hart as usize) % HART_STRIPES]
            .lock()
            .expect("sink poisoned");
        let ring = stripe.entry(rec.hart).or_default();
        if ring.len() < self.per_hart {
            ring.push(rec);
        } else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn drain(&self) -> Vec<TraceRecord> {
        let mut v = Vec::new();
        for stripe in &self.stripes {
            for (_, ring) in std::mem::take(&mut *stripe.lock().expect("sink poisoned")) {
                v.extend(ring);
            }
        }
        v.sort_by_key(|r| (r.hart, r.seq));
        v
    }

    fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

/// A trivially correct unbuffered sink (one mutex per record) — the
/// reference the ring sink's tests compare against.
#[derive(Default)]
pub struct VecSink {
    records: Mutex<Vec<TraceRecord>>,
}

impl VecSink {
    /// Creates an empty sink.
    pub fn new() -> VecSink {
        VecSink::default()
    }
}

impl TraceSink for VecSink {
    fn record(&self, rec: TraceRecord) {
        self.records.lock().expect("sink poisoned").push(rec);
    }

    fn drain(&self) -> Vec<TraceRecord> {
        let mut v = std::mem::take(&mut *self.records.lock().expect("sink poisoned"));
        v.sort_by_key(|r| (r.hart, r.seq));
        v
    }
}

struct TracerShared {
    sink: Arc<dyn TraceSink>,
    /// This stream's sequence counter: global for the root handle,
    /// per-hart for handles derived with [`Tracer::for_hart`].
    seq: AtomicU64,
    metrics: MetricsRegistry,
    /// The hart stamped onto every record (0 for the root handle).
    hart: u64,
}

/// The handle instrumented components hold.
///
/// Cloning shares the underlying sink, sequence counter and metrics (the
/// same tracer is handed to the CPU, the kernel and the scheduler of one
/// run). The disabled tracer is a `None`: [`Tracer::record`] compiles to
/// a branch over an `Option`, so instrumentation can stay unconditional.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<TracerShared>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Some(_) => write!(f, "Tracer(enabled)"),
            None => write!(f, "Tracer(disabled)"),
        }
    }
}

impl Tracer {
    /// The no-op tracer (the default everywhere).
    pub fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    /// An enabled tracer over a fresh [`RingSink`].
    pub fn enabled() -> Tracer {
        Tracer::with_sink(Arc::new(RingSink::new()))
    }

    /// An enabled tracer over a caller-supplied sink.
    pub fn with_sink(sink: Arc<dyn TraceSink>) -> Tracer {
        Tracer {
            inner: Some(Arc::new(TracerShared {
                sink,
                seq: AtomicU64::new(0),
                metrics: MetricsRegistry::new(),
                hart: 0,
            })),
        }
    }

    /// Derives a handle scoped to one guest hart: its records are stamped
    /// with `hart` and numbered by a fresh per-hart sequence counter,
    /// while the sink and metrics registry stay shared with `self`.
    ///
    /// Derive **once** per hart and clone the result for every component
    /// of that hart (CPU, kernel runner) — clones share the sequence
    /// counter, so the hart's stream stays totally ordered. Deriving from
    /// a disabled tracer yields a disabled handle.
    pub fn for_hart(&self, hart: u64) -> Tracer {
        Tracer {
            inner: self.inner.as_ref().map(|inner| {
                Arc::new(TracerShared {
                    sink: Arc::clone(&inner.sink),
                    seq: AtomicU64::new(0),
                    metrics: inner.metrics.clone(),
                    hart,
                })
            }),
        }
    }

    /// Whether records are being collected.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Records an event at the given simulated-cycle timestamp. A no-op
    /// when disabled.
    #[inline]
    pub fn record(&self, cycles: u64, event: TraceEvent) {
        if let Some(inner) = &self.inner {
            let seq = inner.seq.fetch_add(1, Ordering::Relaxed);
            inner.sink.record(TraceRecord {
                hart: inner.hart,
                seq,
                cycles,
                event,
            });
        }
    }

    /// Bumps the named monotonic counter by `n`. A no-op when disabled.
    pub fn count(&self, name: &str, n: u64) {
        if let Some(inner) = &self.inner {
            inner.metrics.counter(name).add(n);
        }
    }

    /// Records `value` into the named log2 histogram. A no-op when
    /// disabled.
    pub fn observe(&self, name: &str, value: u64) {
        if let Some(inner) = &self.inner {
            inner.metrics.histogram(name).record(value);
        }
    }

    /// The metrics registry, when enabled.
    pub fn metrics(&self) -> Option<&MetricsRegistry> {
        self.inner.as_ref().map(|i| &i.metrics)
    }

    /// Drains every record collected so far, in `(hart, seq)` order.
    /// Empty for a disabled tracer.
    pub fn drain(&self) -> Vec<TraceRecord> {
        match &self.inner {
            Some(inner) => inner.sink.drain(),
            None => Vec::new(),
        }
    }

    /// Records dropped by the sink so far (0 when disabled).
    pub fn dropped(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.sink.dropped())
    }
}
