//! SPEC-CPU2017-like synthetic programs for §6.2/§6.3 (Fig. 13, Tables 2
//! and 3).
//!
//! SPEC CPU2017 is proprietary; per DESIGN.md, each benchmark is replaced
//! by a deterministic generated program that reproduces the *aggregate
//! properties* the experiments depend on: code-section size, the share of
//! vector-extension instructions, and indirect-jump density — taken from
//! the paper's own Table 3 measurements. Programs terminate with a
//! checksum, so original-vs-rewritten runs are differentially testable
//! (the §6.3 correctness methodology).
//!
//! Generated code mixes: straight-line integer blocks (with compressed
//! encodings), vectorized inner loops (the RVV share), direct calls,
//! indirect calls through a function-pointer table in `.rodata` (what
//! drives Safer checks / ARMore redirects at runtime), and conditional
//! branches.

use chimera_isa::prng::Prng;
use chimera_obj::{assemble, AsmOptions, Binary};
use std::fmt::Write;

/// The static profile of one benchmark (Table 3 columns).
#[derive(Debug, Clone, Copy)]
pub struct BenchProfile {
    /// Benchmark name (paper's naming).
    pub name: &'static str,
    /// Paper-reported code size in MB (used to scale generation).
    pub code_mb: f64,
    /// Paper-reported share of extension instructions (fraction).
    pub ext_frac: f64,
    /// Relative indirect-call density (dimensionless knob; calibrated per
    /// benchmark family so Safer/ARMore trigger counts rank like Table 2).
    pub indirect_weight: u32,
    /// Relative dynamic work per run.
    pub work: u32,
}

/// The 17 SPEC CPU2017 rows of Fig. 13 / Table 3 (code sections > 1 MiB).
pub const SPEC_PROFILES: &[BenchProfile] = &[
    BenchProfile {
        name: "perlbench_r",
        code_mb: 1.52,
        ext_frac: 0.0058,
        indirect_weight: 10,
        work: 10,
    },
    BenchProfile {
        name: "gcc_r",
        code_mb: 6.88,
        ext_frac: 0.0044,
        indirect_weight: 6,
        work: 8,
    },
    BenchProfile {
        name: "omnetpp_r",
        code_mb: 1.14,
        ext_frac: 0.0095,
        indirect_weight: 8,
        work: 8,
    },
    BenchProfile {
        name: "xalancbmk_r",
        code_mb: 2.91,
        ext_frac: 0.0136,
        indirect_weight: 7,
        work: 8,
    },
    BenchProfile {
        name: "cactuBSSN_r",
        code_mb: 3.49,
        ext_frac: 0.0324,
        indirect_weight: 1,
        work: 8,
    },
    BenchProfile {
        name: "parest_r",
        code_mb: 2.0,
        ext_frac: 0.025,
        indirect_weight: 3,
        work: 8,
    },
    BenchProfile {
        name: "wrf_r",
        code_mb: 16.79,
        ext_frac: 0.0321,
        indirect_weight: 2,
        work: 6,
    },
    BenchProfile {
        name: "blender_r",
        code_mb: 7.31,
        ext_frac: 0.0151,
        indirect_weight: 4,
        work: 6,
    },
    BenchProfile {
        name: "cam4_r",
        code_mb: 4.29,
        ext_frac: 0.0337,
        indirect_weight: 2,
        work: 8,
    },
    BenchProfile {
        name: "imagick_r",
        code_mb: 1.41,
        ext_frac: 0.0163,
        indirect_weight: 5,
        work: 8,
    },
    BenchProfile {
        name: "perlbench_s",
        code_mb: 1.52,
        ext_frac: 0.0058,
        indirect_weight: 10,
        work: 10,
    },
    BenchProfile {
        name: "gcc_s",
        code_mb: 6.88,
        ext_frac: 0.0044,
        indirect_weight: 6,
        work: 8,
    },
    BenchProfile {
        name: "omnetpp_s",
        code_mb: 1.14,
        ext_frac: 0.0095,
        indirect_weight: 8,
        work: 8,
    },
    BenchProfile {
        name: "xalancbmk_s",
        code_mb: 2.91,
        ext_frac: 0.0136,
        indirect_weight: 7,
        work: 8,
    },
    BenchProfile {
        name: "cactuBSSN_s",
        code_mb: 3.49,
        ext_frac: 0.0324,
        indirect_weight: 1,
        work: 8,
    },
    BenchProfile {
        name: "wrf_s",
        code_mb: 16.78,
        ext_frac: 0.0320,
        indirect_weight: 2,
        work: 6,
    },
    BenchProfile {
        name: "cam4_s",
        code_mb: 4.47,
        ext_frac: 0.0327,
        indirect_weight: 2,
        work: 8,
    },
];

/// The real-world application rows of Tables 2–3.
pub const APP_PROFILES: &[BenchProfile] = &[
    BenchProfile {
        name: "Git",
        code_mb: 3.11,
        ext_frac: 0.027,
        indirect_weight: 4,
        work: 6,
    },
    BenchProfile {
        name: "Vim",
        code_mb: 2.91,
        ext_frac: 0.0231,
        indirect_weight: 4,
        work: 6,
    },
    BenchProfile {
        name: "CMake",
        code_mb: 7.60,
        ext_frac: 0.0332,
        indirect_weight: 6,
        work: 6,
    },
    BenchProfile {
        name: "CTest",
        code_mb: 8.50,
        ext_frac: 0.0330,
        indirect_weight: 6,
        work: 6,
    },
    BenchProfile {
        name: "Python",
        code_mb: 2.31,
        ext_frac: 0.0177,
        indirect_weight: 8,
        work: 6,
    },
    BenchProfile {
        name: "Libopenblas",
        code_mb: 6.72,
        ext_frac: 0.0059,
        indirect_weight: 2,
        work: 8,
    },
];

/// Generation options.
#[derive(Debug, Clone, Copy)]
pub struct GenOptions {
    /// Scale factor on code size (1.0 = the paper's MB figure; tests use
    /// much smaller scales).
    pub size_scale: f64,
    /// Scale factor on dynamic work.
    pub work_scale: f64,
    /// RNG seed (generation is fully deterministic given profile + seed).
    pub seed: u64,
}

impl Default for GenOptions {
    fn default() -> Self {
        GenOptions {
            size_scale: 1.0 / 64.0,
            work_scale: 1.0,
            seed: 42,
        }
    }
}

/// Generates the synthetic program for a benchmark profile.
pub fn generate(profile: &BenchProfile, opts: GenOptions) -> Binary {
    let mut rng = Prng::new(opts.seed ^ hash_name(profile.name));
    let target_bytes = (profile.code_mb * 1024.0 * 1024.0 * opts.size_scale) as usize;
    // A generated function averages ~140 bytes (compressed encodings).
    let n_fns = (target_bytes / 140).clamp(4, 120_000);
    // Vector sites to hit the extension-instruction share: a vector loop
    // block is ~15 vector insts; solve sites so the share of vector
    // instructions over all instructions ≈ ext_frac.
    let approx_insts = target_bytes / 3; // Mixed 2/4-byte encodings.
    let vector_sites = ((approx_insts as f64 * profile.ext_frac) / 15.0) as usize;

    let mut src = String::new();
    writeln!(src, ".data").unwrap();
    writeln!(src, "varr:").unwrap();
    for i in 0..32 {
        writeln!(src, "    .dword {}", (i * 11 + 3) % 127).unwrap();
    }
    writeln!(src, "scratch: .zero 256").unwrap();
    writeln!(src, ".rodata").unwrap();
    writeln!(src, "fptab:").unwrap();
    for i in 0..n_fns {
        writeln!(src, "    .dword fn{i}").unwrap();
    }

    writeln!(src, ".text").unwrap();
    // Main: iterate the function table, mixing direct and indirect calls.
    let iters = ((profile.work as f64) * opts.work_scale).max(1.0) as usize;
    writeln!(
        src,
        "
_start:
    li s11, {iters}
    li s10, 0            # checksum
main_outer:
    li s9, 0             # function index
main_loop:
    li t0, {n_fns}
    bge s9, t0, main_next
    mv a0, s10
    mv a1, s9
"
    )
    .unwrap();
    // Mix of direct and indirect dispatch, decided statically per ratio.
    let indirect_ratio = profile.indirect_weight as f64 / 12.0;
    writeln!(
        src,
        "
    # Dispatch: indirect through the function-pointer table for a slice of
    # indices, direct otherwise.
    li t1, {threshold}
    blt s9, t1, dispatch_indirect
    call fn0
    j dispatched
dispatch_indirect:
    la t2, fptab
    slli t3, s9, 3
    add t2, t2, t3
    ld t4, 0(t2)
    jalr t4
dispatched:
    add s10, s10, a0
    addi s9, s9, 1
    j main_loop
main_next:
    addi s11, s11, -1
    bnez s11, main_outer
    mv a0, s10
    li a7, 93
    ecall
",
        threshold = ((n_fns as f64) * indirect_ratio) as usize,
    )
    .unwrap();

    // Functions. A slice of the vector functions are high-register-pressure
    // leaves (every caller-saved register live across the vector loop),
    // the compute-intensive case where traditional register liveness fails
    // to find an exit register and CHBP's exit-position shifting is needed
    // (§4.2 Challenge 2, Table 3).
    let mut vector_left = vector_sites;
    for i in 0..n_fns {
        let with_vector =
            vector_left > 0 && rng.chance((vector_sites as f64 / n_fns as f64).min(1.0));
        if with_vector {
            vector_left -= 1;
        }
        let pressure = if with_vector && rng.chance(0.4) {
            if rng.chance(0.05) {
                Pressure::Extreme
            } else {
                Pressure::High
            }
        } else {
            Pressure::None
        };
        emit_function(&mut src, i, n_fns, with_vector, pressure, &mut rng);
    }

    assemble(
        &src,
        AsmOptions {
            compress: true,
            profile: chimera_isa::ExtSet::RV64GCV,
        },
    )
    .expect("speclike program assembles")
}

fn hash_name(name: &str) -> u64 {
    name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
    })
}

/// Register-pressure level of a generated function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pressure {
    /// Normal: plenty of dead temporaries at every point.
    None,
    /// Leaf function with every caller-saved register live across the
    /// vector loop; a register first *dies* shortly after the loop, so
    /// exit-position shifting succeeds where plain liveness fails.
    High,
    /// Like `High`, but registers are re-read round-robin for so long that
    /// shifting gives up too: the trap-based fallback case.
    Extreme,
}

/// Emits one function: arithmetic blocks with branches, an optional vector
/// loop, an optional call to a later function, returning a mixed checksum
/// in `a0`.
fn emit_function(
    src: &mut String,
    idx: usize,
    n_fns: usize,
    vector: bool,
    pressure: Pressure,
    rng: &mut Prng,
) {
    if pressure != Pressure::None {
        emit_pressure_leaf(src, idx, pressure, rng);
        return;
    }
    writeln!(src, "fn{idx}:").unwrap();
    writeln!(src, "    addi sp, sp, -16").unwrap();
    writeln!(src, "    sd ra, 8(sp)").unwrap();
    // a0 = checksum-in, a1 = index. Mix deterministically.
    let blocks = rng.range_usize(2, 6);
    for b in 0..blocks {
        let ops = rng.range_usize(4, 14);
        for _ in 0..ops {
            match rng.range_usize(0, 6) {
                0 => writeln!(src, "    addi a0, a0, {}", rng.range_i64(-512, 512)).unwrap(),
                1 => writeln!(src, "    xor a0, a0, a1").unwrap(),
                2 => writeln!(src, "    slli t0, a0, {}", rng.range_usize(1, 16)).unwrap(),
                3 => writeln!(src, "    add a0, a0, t0").unwrap(),
                4 => writeln!(src, "    srli t1, a0, {}", rng.range_usize(1, 8)).unwrap(),
                _ => writeln!(src, "    xor a0, a0, t1").unwrap(),
            }
        }
        // Conditional skip of the next block (taken on data parity).
        if b + 1 < blocks {
            writeln!(src, "    andi t2, a0, {}", 1 << rng.range_usize(0, 4)).unwrap();
            writeln!(src, "    beqz t2, fn{idx}_b{next}", next = b + 1).unwrap();
            writeln!(src, "    addi a0, a0, 1").unwrap();
            writeln!(src, "fn{idx}_b{next}:", next = b + 1).unwrap();
        }
    }
    if vector {
        // A vector kernel over the shared array: a realistic loop body
        // (~15 vector instructions per iteration, like an unrolled
        // autovectorized inner loop) reduced into the checksum.
        writeln!(
            src,
            "
    la t0, varr
    li t1, 32
    li t3, 0
fn{idx}_vloop:
    vsetvli t2, t1, e64, m1, ta, ma
    vle64.v v1, (t0)
    vmv.v.x v2, a0
    vmul.vv v3, v1, v2
    vadd.vv v6, v3, v1
    vxor.vv v7, v6, v2
    vmacc.vv v3, v6, v7
    vsub.vv v6, v3, v1
    vand.vv v7, v6, v2
    vor.vv v6, v7, v1
    vmul.vv v3, v6, v3
    vadd.vi v3, v3, 5
    vmv.v.i v4, 0
    vredsum.vs v5, v3, v4
    vmv.x.s t4, v5
    add t3, t3, t4
    sub t1, t1, t2
    slli t2, t2, 3
    add t0, t0, t2
    bnez t1, fn{idx}_vloop
    xor a0, a0, t3
"
        )
        .unwrap();
    }
    // Occasionally call a later function directly (bounded depth: only
    // functions with larger indices, so the call graph is a DAG).
    if idx + 1 < n_fns && rng.chance(0.25) {
        let callee = rng.range_usize(idx + 1, n_fns);
        writeln!(src, "    call fn{callee}").unwrap();
    }
    writeln!(src, "    ld ra, 8(sp)").unwrap();
    writeln!(src, "    addi sp, sp, 16").unwrap();
    writeln!(src, "    ret").unwrap();
}

/// A leaf function where every caller-saved register carries a live value
/// across its vector loop (see [`Pressure`]).
fn emit_pressure_leaf(src: &mut String, idx: usize, pressure: Pressure, rng: &mut Prng) {
    writeln!(src, "fn{idx}:").unwrap();
    // Load long-lived values into the registers the vector loop does not
    // use internally (t5, t6, a2..a7); a1 and ra are live anyway (argument
    // + leaf return address).
    for (i, r) in ["t5", "t6", "a2", "a3", "a4", "a5", "a6", "a7"]
        .iter()
        .enumerate()
    {
        writeln!(src, "    li {r}, {}", 17 + i * 13 + rng.range_usize(0, 8)).unwrap();
    }
    writeln!(
        src,
        "
    la t0, varr
    li t1, 32
    li t3, 0
fn{idx}_vloop:
    vsetvli t2, t1, e64, m1, ta, ma
    vle64.v v1, (t0)
    vmv.v.x v2, a0
    vmul.vv v3, v1, v2
    vmacc.vv v3, v1, v2
    vadd.vi v3, v3, 3
    vmv.v.i v4, 0
    vredsum.vs v5, v3, v4
    vmv.x.s t4, v5
    add t3, t3, t4
    sub t1, t1, t2
    slli t2, t2, 3
    add t0, t0, t2
    bnez t1, fn{idx}_vloop
"
    )
    .unwrap();
    // Post-loop: first *read* the loop temporaries (so they are live at
    // the natural exit position), then consume the pressure registers.
    let consume = [
        "t3", "t0", "t1", "t2", "t4", "a1", "t5", "t6", "a2", "a3", "a4", "a5", "a6", "a7",
    ];
    match pressure {
        Pressure::High => {
            for r in consume {
                writeln!(src, "    xor a0, a0, {r}").unwrap();
            }
            // The first *definition* after the loop: the point shifting
            // discovers (a def kills the old value, so the register is
            // dead just before it — §4.2's Figure 8).
            writeln!(src, "    slli t5, a0, 7").unwrap();
            writeln!(src, "    xor a0, a0, t5").unwrap();
        }
        Pressure::Extreme => {
            // Round-robin re-reads: no register dies for dozens of
            // instructions, beyond the shifting window.
            for round in 0..3 {
                for r in consume {
                    if round % 2 == 0 {
                        writeln!(src, "    xor a0, a0, {r}").unwrap();
                    } else {
                        writeln!(src, "    add a0, a0, {r}").unwrap();
                    }
                }
            }
        }
        Pressure::None => unreachable!(),
    }
    writeln!(src, "    ret").unwrap();
}

#[cfg(test)]
mod tests {
    use super::*;
    use chimera_emu::{run_binary, run_binary_on};
    use chimera_isa::ExtSet;
    use chimera_rewrite::{chbp_rewrite, Mode, RewriteOptions};

    fn small(profile: &BenchProfile) -> Binary {
        generate(
            profile,
            GenOptions {
                size_scale: 1.0 / 512.0,
                work_scale: 0.4,
                seed: 7,
            },
        )
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small(&SPEC_PROFILES[0]);
        let b = small(&SPEC_PROFILES[0]);
        assert_eq!(
            a.section(".text").unwrap().data,
            b.section(".text").unwrap().data
        );
    }

    #[test]
    fn programs_run_and_terminate() {
        for p in &SPEC_PROFILES[..3] {
            let bin = small(p);
            let r = run_binary(&bin, 500_000_000).unwrap_or_else(|e| panic!("{}: {e}", p.name));
            assert!(r.stats.instret > 300, "{} did real work", p.name);
        }
    }

    #[test]
    fn downgrade_preserves_checksum() {
        // §6.3 methodology: translated binaries behave identically.
        let p = &SPEC_PROFILES[4]; // cactuBSSN_r: highest vector share.
        let bin = small(p);
        let native = run_binary(&bin, 500_000_000).unwrap();
        assert!(native.stats.vector_insts > 0, "profile has vector code");
        let rw = chbp_rewrite(&bin, ExtSet::RV64GC, RewriteOptions::default()).unwrap();
        let down = run_binary_on(&rw.binary, ExtSet::RV64GC, 2_000_000_000).unwrap();
        assert_eq!(native.exit_code, down.exit_code, "{}", p.name);
        assert_eq!(down.stats.vector_insts, 0);
    }

    #[test]
    fn empty_patch_preserves_checksum_and_runs_with_trampolines() {
        let p = &SPEC_PROFILES[4];
        let bin = small(p);
        let native = run_binary(&bin, 500_000_000).unwrap();
        let rw = chbp_rewrite(
            &bin,
            ExtSet::RV64GCV,
            RewriteOptions {
                mode: Mode::EmptyPatch(chimera_isa::Ext::V),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(rw.stats.smile_trampolines > 0);
        let patched = run_binary_on(&rw.binary, ExtSet::RV64GCV, 2_000_000_000).unwrap();
        assert_eq!(native.exit_code, patched.exit_code);
        // Empty patching overhead should be small (§6.2: ~5%).
        let overhead = patched.stats.cycles as f64 / native.stats.cycles as f64 - 1.0;
        assert!(
            overhead < 0.35,
            "{}: empty-patch overhead {:.1}% too high",
            p.name,
            overhead * 100.0
        );
    }

    #[test]
    fn indirect_calls_present() {
        let bin = small(&SPEC_PROFILES[0]); // perlbench: indirect-heavy.
        let r = run_binary(&bin, 500_000_000).unwrap();
        assert!(r.stats.indirect_jumps > 10);
    }
}
