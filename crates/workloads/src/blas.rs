//! BLAS-like kernels for the §6.4 real-world evaluation: `dgemm`, `sgemm`,
//! `dgemv`, `sgemv`, each in an RVV (extension) and a scalar (base)
//! version, generated in our assembler.
//!
//! Matrix entries are small integers stored as floats, so every product
//! and sum is exactly representable: results are bit-identical between the
//! scalar and vector versions regardless of summation order, which makes
//! differential correctness checks exact.
//!
//! Threading model: the bench harness parallelizes over *row slices* (each
//! worker runs one instance computing `m / T` rows), matching how BLAS
//! partitions gemm/gemv; cross-thread synchronization is modelled by the
//! harness's barrier term.

use chimera_obj::{assemble, AsmOptions, Binary};
use std::fmt::Write;

/// Element precision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Precision {
    /// f64 (`dgemm`/`dgemv`).
    Double,
    /// f32 (`sgemm`/`sgemv`).
    Single,
}

impl Precision {
    fn elem_dir(self) -> &'static str {
        match self {
            Precision::Double => ".double",
            Precision::Single => ".float",
        }
    }

    fn bytes(self) -> usize {
        match self {
            Precision::Double => 8,
            Precision::Single => 4,
        }
    }

    fn sew(self) -> &'static str {
        match self {
            Precision::Double => "e64",
            Precision::Single => "e32",
        }
    }

    fn vle(self) -> &'static str {
        match self {
            Precision::Double => "vle64.v",
            Precision::Single => "vle32.v",
        }
    }

    fn vse(self) -> &'static str {
        match self {
            Precision::Double => "vse64.v",
            Precision::Single => "vse32.v",
        }
    }

    fn fl(self) -> &'static str {
        match self {
            Precision::Double => "fld",
            Precision::Single => "flw",
        }
    }

    fn fs(self) -> &'static str {
        match self {
            Precision::Double => "fsd",
            Precision::Single => "fsw",
        }
    }

    fn suf(self) -> &'static str {
        match self {
            Precision::Double => "d",
            Precision::Single => "s",
        }
    }
}

fn emit_matrix(out: &mut String, name: &str, rows: usize, cols: usize, p: Precision, seed: u64) {
    writeln!(out, "        {name}:").unwrap();
    for i in 0..rows * cols {
        let v = ((i as u64).wrapping_mul(31).wrapping_add(seed) % 7) as i64 - 3;
        writeln!(out, "            {} {}", p.elem_dir(), v).unwrap();
    }
}

/// Generates a GEMM task: `C = A(m×k) · B(k×n)`, rows `[r0, r1)`,
/// exiting with an integer checksum of the computed C slice.
pub fn gemm(
    m: usize,
    n: usize,
    k: usize,
    r0: usize,
    r1: usize,
    p: Precision,
    vectorized: bool,
) -> Binary {
    assert!(r0 < r1 && r1 <= m);
    let eb = p.bytes();
    let mut src = String::new();
    writeln!(src, "        .data").unwrap();
    emit_matrix(&mut src, "ma", m, k, p, 1);
    emit_matrix(&mut src, "mb", k, n, p, 5);
    writeln!(src, "        mc: .zero {}", m * n * eb).unwrap();
    writeln!(src, "        .text").unwrap();

    let (sew, vle, vse, fl, suf) = (p.sew(), p.vle(), p.vse(), p.fl(), p.suf());
    let row_a = k * eb;
    let row_b = n * eb;
    let row_c = n * eb;

    if vectorized {
        // i over rows, j strip-mined by vsetvli, l inner with vfmacc.vf.
        writeln!(
            src,
            "
        _start:
            li s0, {r0}               # i
        i_loop:
            li t0, {r1}
            bge s0, t0, done
            la s1, mc
            li t1, {row_c}
            mul t2, s0, t1
            add s1, s1, t2            # &C[i][0]
            li s2, {n}                # remaining columns
            li s3, 0                  # j offset (bytes)
        j_loop:
            beqz s2, j_done
            vsetvli s4, s2, {sew}, m1, ta, ma
            vmv.v.i v3, 0
            li s5, 0                  # l
        l_loop:
            li t0, {k}
            bge s5, t0, l_done
            la t1, ma
            li t2, {row_a}
            mul t3, s0, t2
            add t1, t1, t3
            li t2, {eb}
            mul t3, s5, t2
            add t1, t1, t3            # &A[i][l]
            {fl} fa0, 0(t1)
            la t1, mb
            li t2, {row_b}
            mul t3, s5, t2
            add t1, t1, t3
            add t1, t1, s3            # &B[l][j]
            {vle} v1, (t1)
            vfmacc.vf v3, v1, fa0
            addi s5, s5, 1
            j l_loop
        l_done:
            add t1, s1, s3
            {vse} v3, (t1)
            sub s2, s2, s4
            li t2, {eb}
            mul t3, s4, t2
            add s3, s3, t3
            j j_loop
        j_done:
            addi s0, s0, 1
            j i_loop
        done:
        "
        )
        .unwrap();
    } else {
        writeln!(
            src,
            "
        _start:
            li s0, {r0}
        i_loop:
            li t0, {r1}
            bge s0, t0, done
            li s5, 0                  # l
        l_loop:
            li t0, {k}
            bge s5, t0, l_done
            la t1, ma
            li t2, {row_a}
            mul t3, s0, t2
            add t1, t1, t3
            li t2, {eb}
            mul t3, s5, t2
            add t1, t1, t3
            {fl} fa0, 0(t1)           # a = A[i][l]
            la s1, mb
            li t2, {row_b}
            mul t3, s5, t2
            add s1, s1, t3            # &B[l][0]
            la s2, mc
            li t2, {row_c}
            mul t3, s0, t2
            add s2, s2, t3            # &C[i][0]
            li s3, {n}                # j counter
        ax_loop:
            {fl} ft0, 0(s1)
            {fl} ft1, 0(s2)
            fmadd.{suf} ft1, ft0, fa0, ft1
            {fs} ft1, 0(s2)
            addi s1, s1, {eb}
            addi s2, s2, {eb}
            addi s3, s3, -1
            bnez s3, ax_loop
            addi s5, s5, 1
            j l_loop
        l_done:
            addi s0, s0, 1
            j i_loop
        done:
        ",
            fs = p.fs(),
        )
        .unwrap();
    }

    // Checksum the computed rows (scalar, identical in both versions).
    writeln!(
        src,
        "
            fmv.{wx}.x fa1, zero
            li s0, {r0}
        cs_i:
            li t0, {r1}
            bge s0, t0, cs_done
            la s1, mc
            li t1, {row_c}
            mul t2, s0, t1
            add s1, s1, t2
            li s2, {n}
        cs_j:
            {fl} ft0, 0(s1)
            fadd.{suf} fa1, fa1, ft0
            addi s1, s1, {eb}
            addi s2, s2, -1
            bnez s2, cs_j
            addi s0, s0, 1
            j cs_i
        cs_done:
            fcvt.l.{suf} a0, fa1
            li a7, 93
            ecall
        ",
        wx = if p == Precision::Double { "d" } else { "w" },
    )
    .unwrap();

    let profile = if vectorized {
        chimera_isa::ExtSet::RV64GCV
    } else {
        chimera_isa::ExtSet::RV64GC
    };
    assemble(
        &src,
        AsmOptions {
            compress: true,
            profile,
        },
    )
    .expect("gemm assembles")
}

/// Generates a GEMV task: `y = A(m×n) · x`, rows `[r0, r1)`, exiting with
/// an integer checksum of y. The scalar version's inner loop is the
/// canonical dot shape (upgrade-recognizable).
pub fn gemv(m: usize, n: usize, r0: usize, r1: usize, p: Precision, vectorized: bool) -> Binary {
    assert!(r0 < r1 && r1 <= m);
    let eb = p.bytes();
    let mut src = String::new();
    writeln!(src, "        .data").unwrap();
    emit_matrix(&mut src, "ma", m, n, p, 3);
    emit_matrix(&mut src, "vx", n, 1, p, 9);
    writeln!(src, "        .text").unwrap();
    let (sew, vle, fl, suf) = (p.sew(), p.vle(), p.fl(), p.suf());
    let row_a = n * eb;

    if vectorized {
        writeln!(
            src,
            "
        _start:
            fmv.{wx}.x fa1, zero      # checksum
            li s0, {r0}
        i_loop:
            li t0, {r1}
            bge s0, t0, done
            la t1, ma
            li t2, {row_a}
            mul t3, s0, t2
            add t1, t1, t3            # &A[i][0]
            la t2, vx
            li s2, {n}
            vmv.v.i v3, 0             # partial products accumulator
            vsetvli s4, s2, {sew}, m1, ta, ma
            vmv.v.i v3, 0
        strip:
            beqz s2, reduce
            vsetvli s4, s2, {sew}, m1, ta, ma
            {vle} v1, (t1)
            {vle} v2, (t2)
            vfmacc.vv v3, v1, v2
            sub s2, s2, s4
            li t3, {eb}
            mul t4, s4, t3
            add t1, t1, t4
            add t2, t2, t4
            j strip
        reduce:
            li s2, {n}
            vsetvli s4, s2, {sew}, m1, ta, ma
            vmv.v.i v4, 0
            vfredusum.vs v5, v3, v4
            vmv.x.s t5, v5
            fmv.{wx}.x ft0, t5
            fadd.{suf} fa1, fa1, ft0
            addi s0, s0, 1
            j i_loop
        done:
            fcvt.l.{suf} a0, fa1
            li a7, 93
            ecall
        ",
            wx = if p == Precision::Double { "d" } else { "w" },
        )
        .unwrap();
    } else {
        writeln!(
            src,
            "
        _start:
            fmv.{wx}.x fa1, zero
            li s0, {r0}
        i_loop:
            li t0, {r1}
            bge s0, t0, done
            la t1, ma
            li t2, {row_a}
            mul t3, s0, t2
            add t1, t1, t3
            la t2, vx
            li t3, {n}
            fmv.{wx}.x fa0, zero
        dot:
            {fl} ft0, 0(t1)
            {fl} ft1, 0(t2)
            fmadd.{suf} fa0, ft0, ft1, fa0
            addi t1, t1, {eb}
            addi t2, t2, {eb}
            addi t3, t3, -1
            bnez t3, dot
            fadd.{suf} fa1, fa1, fa0
            addi s0, s0, 1
            j i_loop
        done:
            fcvt.l.{suf} a0, fa1
            li a7, 93
            ecall
        ",
            wx = if p == Precision::Double { "d" } else { "w" },
        )
        .unwrap();
    }
    let profile = if vectorized {
        chimera_isa::ExtSet::RV64GCV
    } else {
        chimera_isa::ExtSet::RV64GC
    };
    assemble(
        &src,
        AsmOptions {
            compress: true,
            profile,
        },
    )
    .expect("gemv assembles")
}

/// The four §6.4 workloads at a given problem size, sliced for `threads`
/// workers: returns per-worker (vector, scalar) binary pairs.
pub fn sliced_kernels(kind: BlasKind, size: usize, threads: usize) -> Vec<(Binary, Binary)> {
    let rows_per = size.div_ceil(threads);
    (0..threads)
        .map(|t| {
            let r0 = (t * rows_per).min(size - 1);
            let r1 = ((t + 1) * rows_per).min(size).max(r0 + 1);
            match kind {
                BlasKind::Dgemm => (
                    gemm(size, size, size, r0, r1, Precision::Double, true),
                    gemm(size, size, size, r0, r1, Precision::Double, false),
                ),
                BlasKind::Sgemm => (
                    gemm(size, size, size, r0, r1, Precision::Single, true),
                    gemm(size, size, size, r0, r1, Precision::Single, false),
                ),
                BlasKind::Dgemv => (
                    gemv(size, size, r0, r1, Precision::Double, true),
                    gemv(size, size, r0, r1, Precision::Double, false),
                ),
                BlasKind::Sgemv => (
                    gemv(size, size, r0, r1, Precision::Single, true),
                    gemv(size, size, r0, r1, Precision::Single, false),
                ),
            }
        })
        .collect()
}

/// The four §6.4 kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlasKind {
    /// f64 matrix–matrix multiply.
    Dgemm,
    /// f32 matrix–matrix multiply.
    Sgemm,
    /// f64 matrix–vector multiply.
    Dgemv,
    /// f32 matrix–vector multiply.
    Sgemv,
}

impl BlasKind {
    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            BlasKind::Dgemm => "dgemm",
            BlasKind::Sgemm => "sgemm",
            BlasKind::Dgemv => "dgemv",
            BlasKind::Sgemv => "sgemv",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chimera_emu::run_binary;

    #[test]
    fn dgemm_scalar_vector_agree_exactly() {
        let v = gemm(8, 8, 8, 0, 8, Precision::Double, true);
        let s = gemm(8, 8, 8, 0, 8, Precision::Double, false);
        let rv = run_binary(&v, 50_000_000).unwrap();
        let rs = run_binary(&s, 50_000_000).unwrap();
        assert_eq!(rv.exit_code, rs.exit_code);
        assert!(rv.stats.vector_insts > 0);
        assert!(rv.stats.cycles < rs.stats.cycles, "vector wins");
    }

    #[test]
    fn sgemm_scalar_vector_agree() {
        let v = gemm(6, 6, 6, 0, 6, Precision::Single, true);
        let s = gemm(6, 6, 6, 0, 6, Precision::Single, false);
        let rv = run_binary(&v, 50_000_000).unwrap();
        let rs = run_binary(&s, 50_000_000).unwrap();
        assert_eq!(rv.exit_code, rs.exit_code);
    }

    #[test]
    fn gemv_versions_agree_both_precisions() {
        for p in [Precision::Double, Precision::Single] {
            let v = gemv(12, 12, 0, 12, p, true);
            let s = gemv(12, 12, 0, 12, p, false);
            let rv = run_binary(&v, 50_000_000).unwrap();
            let rs = run_binary(&s, 50_000_000).unwrap();
            assert_eq!(rv.exit_code, rs.exit_code, "{p:?}");
        }
    }

    #[test]
    fn row_slices_partition_whole_matrix() {
        // Sum of per-slice checksums equals the full-run checksum.
        let full = run_binary(&gemv(8, 8, 0, 8, Precision::Double, false), 50_000_000)
            .unwrap()
            .exit_code;
        let mut sum = 0i64;
        for (_, s) in sliced_kernels(BlasKind::Dgemv, 8, 4) {
            sum += run_binary(&s, 50_000_000).unwrap().exit_code;
        }
        assert_eq!(sum, full);
    }

    #[test]
    fn dgemm_downgrade_matches_native() {
        let v = gemm(6, 6, 6, 0, 6, Precision::Double, true);
        let native = run_binary(&v, 50_000_000).unwrap();
        let rw = chimera_rewrite::chbp_rewrite(
            &v,
            chimera_isa::ExtSet::RV64GC,
            chimera_rewrite::RewriteOptions::default(),
        )
        .unwrap();
        let down = chimera_emu::run_binary_on(&rw.binary, chimera_isa::ExtSet::RV64GC, 500_000_000)
            .unwrap();
        assert_eq!(native.exit_code, down.exit_code);
    }
}
