//! The §6.1 heterogeneous workload: matrix tasks (vector-accelerable) and
//! Fibonacci tasks (pure scalar), each in a *base* (RV64GC) and an
//! *extension* (RV64GCV) version — the two input versions the paper feeds
//! to every system to evaluate downgrading and upgrading.
//!
//! The scalar matrix kernels are written in the canonical counted-loop
//! shape so the upgrade vectorizer (`chimera-rewrite::upgrade`) can prove
//! and batch them — the same contract a compiler's auto-vectorizable output
//! satisfies.

use chimera_obj::{assemble, AsmOptions, Binary};
use std::fmt::Write;

/// A matrix "extension task": dot products over an `n`-element i64 array
/// repeated `reps` times, accumulated into a checksum, plus a scalar
/// mixing phase per repetition (identical in both versions).
///
/// The scalar phase models the non-vectorizable part every real extension
/// task has (setup, bookkeeping, pointer chasing — here a chain of calls
/// through an ifunc-style pointer, which also gives Safer's per-jump
/// checks realistic work); its size is calibrated so that, under the
/// default cost model, a *downgraded* run on a base core costs about
/// 2.5× an accelerated run on an extension core — as close to the paper's
/// 2:1 §6.1 ratio as our interpretive translation quality allows (see
/// EXPERIMENTS.md).
pub fn matrix_task(n: usize, reps: usize, vectorized: bool) -> Binary {
    matrix_task_mixed(n, reps, (n * 13) / 10, vectorized)
}

/// [`matrix_task`] with an explicit scalar-phase iteration count.
pub fn matrix_task_mixed(n: usize, reps: usize, scalar_iters: usize, vectorized: bool) -> Binary {
    let mut data = String::new();
    writeln!(data, "        .data").unwrap();
    writeln!(data, "        va:").unwrap();
    for i in 0..n {
        writeln!(data, "            .dword {}", (i * 3 + 1) % 97).unwrap();
    }
    writeln!(data, "        vb:").unwrap();
    for i in 0..n {
        writeln!(data, "            .dword {}", (i * 7 + 2) % 89).unwrap();
    }
    writeln!(data, "        mixtab: .dword mix_step").unwrap();

    let body = if vectorized {
        format!(
            "
        _start:
            li s2, {reps}
            li s3, 0              # checksum
        outer:
            la t0, va
            la t1, vb
            li t2, {n}
            li s4, 0              # dot accumulator
            vsetvli t3, t2, e64, m1, ta, ma
            vmv.v.i v8, 0
        vloop:
            vsetvli t3, t2, e64, m1, ta, ma
            vle64.v v1, (t0)
            vle64.v v2, (t1)
            vmacc.vv v8, v1, v2
            sub t2, t2, t3
            slli t3, t3, 3
            add t0, t0, t3
            add t1, t1, t3
            bnez t2, vloop
            li t4, {n}
            vsetvli t3, t4, e64, m1, ta, ma
            vmv.v.i v4, 0
            vredsum.vs v5, v8, v4
            vmv.x.s t4, v5
            add s4, s4, t4
            add s3, s3, s4
            li t5, {scalar_iters}
        mix:
            beqz t5, mix_done
            la t6, mixtab
            ld t6, 0(t6)
            mv a0, s3
            jalr t6              # indirect dispatch (ifunc-style)
            mv s3, a0
            addi t5, t5, -1
            j mix
        mix_done:
            addi s2, s2, -1
            bnez s2, outer
            mv a0, s3
            li a7, 93
            ecall
        mix_step:
            slli t6, a0, 13
            xor a0, a0, t6
            srli t6, a0, 7
            xor a0, a0, t6
            slli t6, a0, 17
            xor a0, a0, t6
            slli t6, a0, 11
            xor a0, a0, t6
            srli t6, a0, 19
            xor a0, a0, t6
            slli t6, a0, 5
            xor a0, a0, t6
            srli t6, a0, 23
            xor a0, a0, t6
            slli t6, a0, 3
            xor a0, a0, t6
            ret
            "
        )
    } else {
        // Canonical scalar dot loop (upgrade-recognizable).
        format!(
            "
        _start:
            li s2, {reps}
            li s3, 0
        outer:
            la t0, va
            la t1, vb
            li t2, {n}
            li s4, 0
        loop:
            ld a1, 0(t0)
            ld a2, 0(t1)
            mul a3, a1, a2
            add s4, s4, a3
            addi t0, t0, 8
            addi t1, t1, 8
            addi t2, t2, -1
            bnez t2, loop
            add s3, s3, s4
            li t5, {scalar_iters}
        mix:
            beqz t5, mix_done
            la t6, mixtab
            ld t6, 0(t6)
            mv a0, s3
            jalr t6              # indirect dispatch (ifunc-style)
            mv s3, a0
            addi t5, t5, -1
            j mix
        mix_done:
            addi s2, s2, -1
            bnez s2, outer
            mv a0, s3
            li a7, 93
            ecall
        mix_step:
            slli t6, a0, 13
            xor a0, a0, t6
            srli t6, a0, 7
            xor a0, a0, t6
            slli t6, a0, 17
            xor a0, a0, t6
            slli t6, a0, 11
            xor a0, a0, t6
            srli t6, a0, 19
            xor a0, a0, t6
            slli t6, a0, 5
            xor a0, a0, t6
            srli t6, a0, 23
            xor a0, a0, t6
            slli t6, a0, 3
            xor a0, a0, t6
            ret
            "
        )
    };
    let profile = if vectorized {
        chimera_isa::ExtSet::RV64GCV
    } else {
        chimera_isa::ExtSet::RV64GC
    };
    assemble(
        &format!("{data}\n        .text\n{body}"),
        AsmOptions {
            compress: true,
            profile,
        },
    )
    .expect("matrix task assembles")
}

/// A Fibonacci "base task": iterative fib mod 2^64, repeated. Identical in
/// both versions (it cannot be vector-accelerated).
pub fn fib_task(n: u64, reps: usize) -> Binary {
    let src = format!(
        "
        _start:
            li s2, {reps}
            li s3, 0
        outer:
            li t0, {n}
            li a0, 0
            li a1, 1
        loop:
            add t1, a0, a1
            mv a0, a1
            mv a1, t1
            addi t0, t0, -1
            bnez t0, loop
            add s3, s3, a0
            addi s2, s2, -1
            bnez s2, outer
            mv a0, s3
            li a7, 93
            ecall
        "
    );
    assemble(
        &src,
        AsmOptions {
            compress: true,
            profile: chimera_isa::ExtSet::RV64GC,
        },
    )
    .expect("fib task assembles")
}

/// A communicator task for the many-hart event kernel: the hart reads its
/// id (`sys::HART_ID`), derives a peer id (`id ^ peer_mask`), and runs
/// `rounds` of the symmetric send-then-wait idiom — `ipi(peer); wfi()` —
/// with a little scalar work per round, finishing with a one-shot timer
/// (`set_timer(3); wfi()`). It exits with `id * 1000 + checksum mod 997`,
/// so per-hart results differ and a cross-hart mixup is visible in the
/// exit code, not just the checksum.
///
/// Both harts of a pair must run this task (with the same `peer_mask`) or
/// the pair deadlocks in `wfi` — which the kernel detects and reports
/// rather than hanging. The pending-wake latch makes the symmetric idiom
/// delivery-order-safe: whichever IPI lands first, neither hart can miss
/// its wakeup.
pub fn communicator_task(rounds: usize, peer_mask: u64) -> Binary {
    let src = format!(
        "
        _start:
            li a7, 0x7a00        # sys::HART_ID
            ecall
            mv s0, a0            # s0 = own hart id
            xori s1, s0, {peer_mask}
            li s2, {rounds}
            mv s3, s0            # checksum
        round:
            # A little per-round scalar work keyed on the hart id.
            slli t0, s3, 3
            add s3, s3, t0
            addi s3, s3, 1
            li a7, 0x7a02        # sys::IPI
            mv a0, s1
            ecall
            li a7, 0x7a01        # sys::WFI
            ecall
            addi s2, s2, -1
            bnez s2, round
            li a7, 0x7a03        # sys::SET_TIMER
            li a0, 3
            ecall
            li a7, 0x7a01        # sys::WFI (woken by own timer)
            ecall
            li t0, 997
            remu s3, s3, t0
            li t0, 1000
            mul a0, s0, t0
            add a0, a0, s3
            li a7, 93
            ecall
        "
    );
    assemble(
        &src,
        AsmOptions {
            compress: true,
            profile: chimera_isa::ExtSet::RV64GC,
        },
    )
    .expect("communicator task assembles")
}

/// The standard §6.1 task-pair sizes: tuned so that, under the default cost
/// model, computation times are roughly in the paper's 2:2:2:1 ratio for
/// (base task on base core) : (base task on ext core) :
/// (ext task on base core) : (ext task on ext core).
pub fn standard_tasks() -> StandardTasks {
    StandardTasks {
        matrix_ext: matrix_task(64, 24, true),
        matrix_base: matrix_task(64, 24, false),
        fib_base: fib_task(1500, 8),
    }
}

/// The standard task binaries.
#[derive(Debug, Clone)]
pub struct StandardTasks {
    /// Matrix task, RVV version.
    pub matrix_ext: Binary,
    /// Matrix task, scalar version (canonical loops).
    pub matrix_base: Binary,
    /// Fibonacci task (scalar only).
    pub fib_base: Binary,
}

#[cfg(test)]
mod tests {
    use super::*;
    use chimera_emu::run_binary;

    #[test]
    fn matrix_versions_agree() {
        let v = matrix_task(16, 2, true);
        let s = matrix_task(16, 2, false);
        let rv = run_binary(&v, 10_000_000).unwrap();
        let rs = run_binary(&s, 10_000_000).unwrap();
        assert_eq!(rv.exit_code, rs.exit_code);
        assert!(rv.stats.vector_insts > 0);
        assert_eq!(rs.stats.vector_insts, 0);
        // The vector version is meaningfully faster.
        assert!(rv.stats.cycles < rs.stats.cycles);
    }

    #[test]
    fn communicator_needs_the_event_kernel() {
        // Bare runs (no event scheduler) must reject the first
        // hart-control call, not misexecute it. The end-to-end behaviour
        // lives in chimera-kernel's many-hart tests and the bench gate.
        let c = communicator_task(3, 1);
        match run_binary(&c, 100_000) {
            Err(chimera_emu::RunError::BadSyscall { number }) => {
                assert_eq!(number, chimera_emu::sys::HART_ID);
            }
            other => panic!("expected BadSyscall, got {other:?}"),
        }
    }

    #[test]
    fn fib_runs() {
        let f = fib_task(90, 2);
        let r = run_binary(&f, 1_000_000).unwrap();
        assert!(r.exit_code != 0);
    }

    #[test]
    fn scalar_matrix_is_upgradeable() {
        let s = matrix_task(32, 2, false);
        let rw = chimera_rewrite::upgrade_rewrite(&s, chimera_rewrite::RewriteOptions::default())
            .unwrap();
        assert!(rw.stats.smile_trampolines >= 1, "the dot loop vectorizes");
        let native = run_binary(&s, 10_000_000).unwrap();
        let up = chimera_emu::run_binary_on(&rw.binary, chimera_isa::ExtSet::RV64GCV, 10_000_000)
            .unwrap();
        assert_eq!(native.exit_code, up.exit_code);
        assert!(up.stats.cycles < native.stats.cycles, "upgrade accelerates");
    }

    #[test]
    fn ext_task_downgrade_cost_ratio_is_sane() {
        // Paper §6.1: ext task on base core ≈ 2× ext task on ext core.
        let v = matrix_task(64, 4, true);
        let native = run_binary(&v, 50_000_000).unwrap();
        let rw = chimera_rewrite::chbp_rewrite(
            &v,
            chimera_isa::ExtSet::RV64GC,
            chimera_rewrite::RewriteOptions::default(),
        )
        .unwrap();
        let down = chimera_emu::run_binary_on(&rw.binary, chimera_isa::ExtSet::RV64GC, 50_000_000)
            .unwrap();
        assert_eq!(native.exit_code, down.exit_code);
        let ratio = down.stats.cycles as f64 / native.stats.cycles as f64;
        assert!(
            (1.8..3.5).contains(&ratio),
            "downgrade slowdown ratio {ratio:.2} should sit near the paper's 2:1 \
             (see EXPERIMENTS.md for the calibration discussion)"
        );
    }
}
