//! # chimera-workloads
//!
//! Deterministic workload generators for every experiment in the paper:
//! the §6.1 heterogeneous task suite ([`hetero`]), the §6.4 BLAS kernels
//! ([`blas`]), and the §6.2/§6.3 SPEC-CPU2017-like synthetic programs
//! ([`speclike`]) parameterised by the per-benchmark profiles of Table 3.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blas;
pub mod hetero;
pub mod speclike;
