//! Recursive-descent disassembly.
//!
//! Plays the role IDA Pro plays in the paper (§4.1): traverse control flow
//! from every known entry point, decoding instructions along the way. The
//! result is *sound* (everything recognized really is an instruction on some
//! execution path) but *incomplete* — code reachable only through indirect
//! jumps whose targets the pointer scan misses stays unrecognized, and
//! Chimera's runtime rewrites such instructions lazily when they fault.
//!
//! Entry points come from three sources, mirroring real tools:
//! 1. the binary's entry point,
//! 2. function symbols,
//! 3. a scan of data sections for 8-byte values that look like code
//!    addresses (how jump tables and function-pointer tables are found).

use chimera_isa::{decode, Inst, XReg};
use chimera_obj::Binary;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// One recognized instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DisasmInst {
    /// Instruction address.
    pub addr: u64,
    /// Encoded length (2 or 4).
    pub len: u8,
    /// Canonical decoded form.
    pub inst: Inst,
}

impl DisasmInst {
    /// The address of the next sequential instruction.
    pub fn next_addr(&self) -> u64 {
        self.addr + self.len as u64
    }
}

/// The result of disassembling a binary.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Disassembly {
    /// Recognized instructions, keyed by address.
    pub insts: BTreeMap<u64, DisasmInst>,
    /// Addresses where decoding failed during traversal (candidate
    /// unrecognized-extension sites; handled lazily at runtime).
    pub undecodable: BTreeSet<u64>,
    /// Discovered direct jump/branch targets (potential basic-block
    /// leaders).
    pub targets: BTreeSet<u64>,
    /// Code addresses discovered in data sections (indirect-jump landing
    /// pads the rewriter must preserve).
    pub data_refs: BTreeSet<u64>,
}

impl Disassembly {
    /// The instruction at `addr`, if recognized.
    pub fn at(&self, addr: u64) -> Option<&DisasmInst> {
        self.insts.get(&addr)
    }

    /// Iterates instructions in address order.
    pub fn iter(&self) -> impl Iterator<Item = &DisasmInst> {
        self.insts.values()
    }

    /// The recognized instruction *containing* `addr` (i.e. whose byte
    /// range covers it), if any. Used to detect jumps into the middle of
    /// an instruction.
    pub fn covering(&self, addr: u64) -> Option<&DisasmInst> {
        self.insts
            .range(..=addr)
            .next_back()
            .map(|(_, i)| i)
            .filter(|i| addr < i.next_addr())
    }
}

/// The decode outcome at one candidate address (what the traversal needs
/// to know, whether it came from a live decode or a precomputed table).
#[derive(Clone, Copy)]
enum DecodeSlot {
    /// No code bytes readable at this address.
    NoWord,
    /// Bytes present but undecodable.
    Bad,
    /// A recognized instruction.
    Inst(u8, Inst),
}

/// Reads and decodes the code word at `addr`.
fn decode_at(binary: &Binary, addr: u64) -> DecodeSlot {
    let Some(word) = read_code_word(binary, addr) else {
        return DecodeSlot::NoWord;
    };
    match decode(word) {
        Ok(d) => DecodeSlot::Inst(d.len, d.inst),
        Err(_) => DecodeSlot::Bad,
    }
}

/// Disassembles a binary by recursive descent from its entry points.
pub fn disassemble(binary: &Binary) -> Disassembly {
    disassemble_with(binary, 1)
}

/// [`disassemble`] with an explicit worker count.
///
/// With `workers > 1` the expensive part — decoding — is hoisted into a
/// speculative pass that decodes *every* halfword offset of `.text` in
/// parallel (decoding is a pure function of the bytes), and the recursive
/// traversal then consumes table lookups instead of live decodes. The
/// traversal itself — and therefore the output — is byte-for-byte the
/// same as the sequential path for every worker count.
pub fn disassemble_with(binary: &Binary, workers: usize) -> Disassembly {
    let text = binary
        .section(".text")
        .expect("binary validated to have .text");
    let text_range = text.addr..text.end();

    if workers <= 1 {
        return traverse(binary, &text_range, |addr| decode_at(binary, addr));
    }

    // Speculative parallel decode: one slot per halfword of .text.
    let halfwords = ((text.end() - text.addr) / 2) as usize;
    const CHUNK: usize = 8192;
    let chunks = crate::par::map_indexed(workers, halfwords.div_ceil(CHUNK), |c| {
        let start = c * CHUNK;
        let end = (start + CHUNK).min(halfwords);
        (start..end)
            .map(|i| decode_at(binary, text.addr + 2 * i as u64))
            .collect::<Vec<DecodeSlot>>()
    });
    let table: Vec<DecodeSlot> = chunks.into_iter().flatten().collect();

    let base = text.addr;
    traverse(binary, &text_range, move |addr| {
        let off = addr - base;
        if off.is_multiple_of(2) {
            table[(off / 2) as usize]
        } else {
            // Misaligned entry points are not table-indexed; decode live
            // (identical to what the sequential path would do).
            decode_at(binary, addr)
        }
    })
}

/// The recursive-descent traversal, generic over where decode results
/// come from. `decode_slot` is only consulted for addresses inside
/// `text_range`.
fn traverse(
    binary: &Binary,
    text_range: &std::ops::Range<u64>,
    decode_slot: impl Fn(u64) -> DecodeSlot,
) -> Disassembly {
    let mut out = Disassembly::default();
    let mut worklist: VecDeque<u64> = VecDeque::new();
    let mut queued: BTreeSet<u64> = BTreeSet::new();

    let push = |wl: &mut VecDeque<u64>, queued: &mut BTreeSet<u64>, addr: u64| {
        if text_range.contains(&addr) && queued.insert(addr) {
            wl.push_back(addr);
        }
    };

    push(&mut worklist, &mut queued, binary.entry);
    for sym in &binary.symbols {
        if sym.kind == chimera_obj::SymKind::Func {
            push(&mut worklist, &mut queued, sym.addr);
        }
    }
    // Pointer scan over non-executable sections: 8-byte-aligned values that
    // land (2-byte aligned) inside .text are treated as code entry points.
    for sec in binary.sections.iter().filter(|s| !s.perms.x) {
        for chunk_start in (0..sec.data.len().saturating_sub(7)).step_by(8) {
            let val = u64::from_le_bytes(
                sec.data[chunk_start..chunk_start + 8]
                    .try_into()
                    .expect("8-byte window"),
            );
            if text_range.contains(&val) && val % 2 == 0 {
                out.data_refs.insert(val);
                push(&mut worklist, &mut queued, val);
            }
        }
    }

    while let Some(start) = worklist.pop_front() {
        let mut addr = start;
        // Walk a straight-line run until a terminator or an already-seen
        // instruction.
        loop {
            if out.insts.contains_key(&addr) || !text_range.contains(&addr) {
                break;
            }
            let (len, inst) = match decode_slot(addr) {
                DecodeSlot::NoWord => break,
                DecodeSlot::Bad => {
                    out.undecodable.insert(addr);
                    break;
                }
                DecodeSlot::Inst(len, inst) => (len, inst),
            };
            let di = DisasmInst { addr, len, inst };
            out.insts.insert(addr, di);

            match inst {
                Inst::Jal { rd, .. } => {
                    let target = inst.direct_target(addr).expect("jal has direct target");
                    out.targets.insert(target);
                    push(&mut worklist, &mut queued, target);
                    if rd != XReg::ZERO {
                        // A call: execution returns to the fallthrough.
                        push(&mut worklist, &mut queued, di.next_addr());
                    }
                    break;
                }
                Inst::Jalr { rd, .. } => {
                    // Indirect: target unknown. Calls fall through on
                    // return; plain indirect jumps end the path.
                    if rd != XReg::ZERO {
                        push(&mut worklist, &mut queued, di.next_addr());
                    }
                    break;
                }
                Inst::Branch { .. } => {
                    let target = inst.direct_target(addr).expect("branch has direct target");
                    out.targets.insert(target);
                    push(&mut worklist, &mut queued, target);
                    addr = di.next_addr();
                }
                Inst::Ecall => {
                    // Syscalls return (except exit; conservatively continue).
                    addr = di.next_addr();
                }
                Inst::Ebreak => break,
                _ => addr = di.next_addr(),
            }
        }
    }
    out
}

/// Reads the (up to) 32 bits of code at `addr`, tolerating a 2-byte tail at
/// the end of the section.
fn read_code_word(binary: &Binary, addr: u64) -> Option<u32> {
    if let Some(w) = binary.read_u32(addr) {
        return Some(w);
    }
    binary.read_u16(addr).map(|h| h as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chimera_obj::{assemble, AsmOptions};

    fn dis(src: &str) -> (Binary, Disassembly) {
        let bin = assemble(src, AsmOptions::default()).unwrap();
        let d = disassemble(&bin);
        (bin, d)
    }

    #[test]
    fn straight_line_code() {
        let (bin, d) = dis("
            _start:
                li a0, 1
                addi a0, a0, 2
                ecall
        ");
        assert_eq!(d.insts.len(), 3);
        assert!(d.at(bin.entry).is_some());
    }

    #[test]
    fn follows_branches_both_ways() {
        let (_, d) = dis("
            _start:
                beqz a0, skip
                addi a1, a1, 1
            skip:
                addi a2, a2, 1
                ecall
        ");
        assert_eq!(d.insts.len(), 4);
        assert_eq!(d.targets.len(), 1);
    }

    #[test]
    fn follows_calls_and_fallthrough() {
        let (bin, d) = dis("
            _start:
                call helper
                ecall
            helper:
                addi a0, a0, 1
                ret
        ");
        // call = auipc+jalr: 2 insts; then ecall; helper: addi + ret.
        assert_eq!(d.insts.len(), 5);
        // The ret's successor is unknown; helper discovered via fallthrough
        // after the ecall (linear) — confirm helper instructions present.
        let text = bin.section(".text").unwrap();
        assert!(d.at(text.addr + 12).is_some());
    }

    #[test]
    fn code_only_reachable_via_data_pointer_is_found() {
        let (_, d) = dis("
            _start:
                la t0, table
                ld t1, 0(t0)
                jr t1
            dead_end:
                ebreak
            indirect_target:
                li a0, 7
                ecall
            .rodata
            table:
                .dword indirect_target
        ");
        // indirect_target discovered through the pointer scan.
        assert!(!d.data_refs.is_empty());
        let t = *d.data_refs.iter().next().unwrap();
        assert!(d.at(t).is_some());
    }

    #[test]
    fn unreachable_code_stays_unrecognized() {
        let (bin, d) = dis("
            _start:
                j end
            hidden:
                addi a0, a0, 1
                nop
                nop
            end:
                ecall
        ");
        let text = bin.section(".text").unwrap();
        // `hidden` (entry+4) is fallthrough-unreachable and has no pointer.
        assert!(d.at(text.addr + 4).is_none());
        // But `end` is found via the jump.
        assert!(d.targets.contains(&(text.addr + 16)));
    }

    #[test]
    fn parallel_decode_table_matches_sequential() {
        let (bin, d) = dis("
            _start:
                la t0, table
                ld t1, 0(t0)
                beqz t1, skip
                jr t1
            skip:
                li a0, 7
                ecall
            target:
                addi a0, a0, 1
                ret
            .rodata
            table:
                .dword target
        ");
        for workers in [2, 4, 8] {
            assert_eq!(disassemble_with(&bin, workers), d, "{workers} workers");
        }
    }

    #[test]
    fn covering_detects_mid_instruction_addresses() {
        let (bin, d) = dis("
            _start:
                lui a0, 0x12345
                ecall
        ");
        let cov = d.covering(bin.entry + 2).unwrap();
        assert_eq!(cov.addr, bin.entry);
        assert_eq!(d.covering(bin.entry + 4).unwrap().addr, bin.entry + 4);
    }
}
