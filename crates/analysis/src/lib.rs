//! # chimera-analysis
//!
//! Static binary analysis for the rewriter: recursive-descent
//! [`disassemble`]-ing (the role IDA Pro plays in the paper), basic-block /
//! control-flow-graph construction ([`Cfg`]), and conservative backward
//! register [`Liveness`] — the "traditional" dead-register search that
//! CHBP's exit-position shifting improves on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cfg;
mod disasm;
mod liveness;

pub use cfg::{BasicBlock, Cfg, Terminator};
pub use disasm::{disassemble, DisasmInst, Disassembly};
pub use liveness::{Liveness, RegSet};

#[cfg(test)]
mod proptests {
    use super::*;
    use chimera_obj::{assemble, AsmOptions};
    use proptest::prelude::*;

    /// Generates small random-but-valid straightline+branch programs.
    fn arb_program() -> impl Strategy<Value = String> {
        let line = prop_oneof![
            (0u8..8, 0u8..8, -64i32..64)
                .prop_map(|(a, b, i)| format!("addi t{}, t{}, {}", a % 7, b % 7, i)),
            (0u8..8, 0u8..8, 0u8..8)
                .prop_map(|(a, b, c)| format!("add a{}, a{}, a{}", a % 8, b % 8, c % 8)),
            (0u8..7).prop_map(|a| format!("beqz t{a}, end")),
            Just("nop".to_string()),
        ];
        proptest::collection::vec(line, 1..40).prop_map(|lines| {
            let mut src = String::from("_start:\n");
            for l in lines {
                src.push_str("    ");
                src.push_str(&l);
                src.push('\n');
            }
            src.push_str("end:\n    ecall\n");
            src
        })
    }

    proptest! {
        /// Every recognized instruction belongs to exactly one block, and
        /// block ranges never overlap.
        #[test]
        fn cfg_partitions_disassembly(src in arb_program()) {
            let bin = assemble(&src, AsmOptions::default()).unwrap();
            let d = disassemble(&bin);
            let cfg = Cfg::build(&d);
            let mut covered = 0usize;
            let mut prev_end = 0u64;
            for b in cfg.blocks.values() {
                prop_assert!(b.start >= prev_end, "blocks overlap");
                prev_end = b.end();
                covered += b.insts.len();
            }
            prop_assert_eq!(covered, d.insts.len());
        }

        /// Liveness is sound on generated programs: a register reported
        /// dead at an address is never the source of the instruction at
        /// that address.
        #[test]
        fn dead_register_never_used_immediately(src in arb_program()) {
            let bin = assemble(&src, AsmOptions::default()).unwrap();
            let d = disassemble(&bin);
            let cfg = Cfg::build(&d);
            let l = Liveness::compute(&cfg);
            for di in d.iter() {
                if let Some(r) = l.dead_register_at(di.addr) {
                    prop_assert!(
                        !di.inst.uses_x().contains(&r),
                        "reported-dead {r} read at {:#x} by {}",
                        di.addr,
                        di.inst
                    );
                }
            }
        }

        /// All successor edges point at block starts.
        #[test]
        fn succ_edges_are_block_starts(src in arb_program()) {
            let bin = assemble(&src, AsmOptions::default()).unwrap();
            let d = disassemble(&bin);
            let cfg = Cfg::build(&d);
            for b in cfg.blocks.values() {
                for s in &b.succs {
                    prop_assert!(cfg.blocks.contains_key(s));
                }
            }
        }
    }
}
