//! # chimera-analysis
//!
//! Static binary analysis for the rewriter: recursive-descent
//! [`disassemble`]-ing (the role IDA Pro plays in the paper), basic-block /
//! control-flow-graph construction ([`Cfg`]), and conservative backward
//! register [`Liveness`] — the "traditional" dead-register search that
//! CHBP's exit-position shifting improves on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cfg;
mod disasm;
mod liveness;
pub mod par;
mod partition;

pub use cfg::{BasicBlock, Cfg, Terminator};
pub use disasm::{disassemble, disassemble_with, DisasmInst, Disassembly};
pub use liveness::{Liveness, RegSet};
pub use partition::inst_spans;

#[cfg(test)]
mod seeded_tests {
    use super::*;
    use chimera_isa::prng::Prng;
    use chimera_obj::{assemble, AsmOptions};

    /// Generates a small random-but-valid straightline+branch program
    /// (seeded replacement for the former proptest strategy).
    fn gen_program(rng: &mut Prng) -> String {
        let mut src = String::from("_start:\n");
        for _ in 0..rng.range_usize(1, 40) {
            let line = match rng.range_usize(0, 4) {
                0 => format!(
                    "addi t{}, t{}, {}",
                    rng.range_usize(0, 7),
                    rng.range_usize(0, 7),
                    rng.range_i64(-64, 64)
                ),
                1 => format!(
                    "add a{}, a{}, a{}",
                    rng.range_usize(0, 8),
                    rng.range_usize(0, 8),
                    rng.range_usize(0, 8)
                ),
                2 => format!("beqz t{}, end", rng.range_usize(0, 7)),
                _ => "nop".to_string(),
            };
            src.push_str("    ");
            src.push_str(&line);
            src.push('\n');
        }
        src.push_str("end:\n    ecall\n");
        src
    }

    const CASES: u64 = 128;

    /// Every recognized instruction belongs to exactly one block, and
    /// block ranges never overlap.
    #[test]
    fn cfg_partitions_disassembly() {
        for seed in 0..CASES {
            let src = gen_program(&mut Prng::new(seed));
            let bin = assemble(&src, AsmOptions::default()).unwrap();
            let d = disassemble(&bin);
            let cfg = Cfg::build(&d);
            let mut covered = 0usize;
            let mut prev_end = 0u64;
            for b in cfg.blocks.values() {
                assert!(b.start >= prev_end, "seed {seed}: blocks overlap");
                prev_end = b.end();
                covered += b.insts.len();
            }
            assert_eq!(covered, d.insts.len(), "seed {seed}");
        }
    }

    /// Liveness is sound on generated programs: a register reported
    /// dead at an address is never the source of the instruction at
    /// that address.
    #[test]
    fn dead_register_never_used_immediately() {
        for seed in 0..CASES {
            let src = gen_program(&mut Prng::new(0x11ff ^ seed));
            let bin = assemble(&src, AsmOptions::default()).unwrap();
            let d = disassemble(&bin);
            let cfg = Cfg::build(&d);
            let l = Liveness::compute(&cfg);
            for di in d.iter() {
                if let Some(r) = l.dead_register_at(di.addr) {
                    assert!(
                        !di.inst.uses_x().contains(&r),
                        "seed {seed}: reported-dead {r} read at {:#x} by {}",
                        di.addr,
                        di.inst
                    );
                }
            }
        }
    }

    /// All successor edges point at block starts.
    #[test]
    fn succ_edges_are_block_starts() {
        for seed in 0..CASES {
            let src = gen_program(&mut Prng::new(0xcf90 ^ seed));
            let bin = assemble(&src, AsmOptions::default()).unwrap();
            let d = disassemble(&bin);
            let cfg = Cfg::build(&d);
            for b in cfg.blocks.values() {
                for s in &b.succs {
                    assert!(cfg.blocks.contains_key(s), "seed {seed}");
                }
            }
        }
    }
}
