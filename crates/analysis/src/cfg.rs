//! Basic blocks and the control-flow graph over a [`Disassembly`].
//!
//! Successor edges are *known* edges only: an indirect jump (`jalr`)
//! contributes no successors and is flagged on the block, so downstream
//! analyses (liveness) can be conservative there — the same conservatism
//! that limits traditional dead-register search (§4.2, Challenge 2).

use crate::disasm::{DisasmInst, Disassembly};
use chimera_isa::{Inst, XReg};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// How a basic block ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Terminator {
    /// Falls through to the next block.
    Fallthrough,
    /// Conditional branch: taken target + fallthrough.
    Branch,
    /// Direct jump (`jal`): one target, plus fallthrough when linking
    /// (a call).
    Jump {
        /// Whether the jump links (i.e. is a call and returns).
        is_call: bool,
    },
    /// Indirect jump (`jalr`): unknown targets.
    Indirect {
        /// Whether the jump links (an indirect call returns to the
        /// fallthrough).
        is_call: bool,
    },
    /// `ecall` / `ebreak` / end of recognized code.
    Stop,
}

/// A basic block.
#[derive(Debug, Clone)]
pub struct BasicBlock {
    /// Address of the first instruction.
    pub start: u64,
    /// The instructions, in order.
    pub insts: Vec<DisasmInst>,
    /// Known successor block addresses.
    pub succs: Vec<u64>,
    /// How the block ends.
    pub terminator: Terminator,
}

impl BasicBlock {
    /// One past the last byte of the block.
    pub fn end(&self) -> u64 {
        self.insts
            .last()
            .map(DisasmInst::next_addr)
            .unwrap_or(self.start)
    }

    /// Whether the block's successor set is incomplete (indirect control
    /// flow); liveness must assume everything is live after it.
    pub fn has_unknown_succs(&self) -> bool {
        matches!(
            self.terminator,
            Terminator::Indirect { .. } | Terminator::Stop
        )
    }
}

/// A control-flow graph.
#[derive(Debug, Clone, Default)]
pub struct Cfg {
    /// Blocks keyed by start address.
    pub blocks: BTreeMap<u64, BasicBlock>,
    /// Predecessor edges.
    pub preds: HashMap<u64, Vec<u64>>,
}

impl Cfg {
    /// The block containing `addr`, if any.
    pub fn block_containing(&self, addr: u64) -> Option<&BasicBlock> {
        self.blocks
            .range(..=addr)
            .next_back()
            .map(|(_, b)| b)
            .filter(|b| addr < b.end())
    }

    /// Builds the CFG from a disassembly.
    pub fn build(d: &Disassembly) -> Cfg {
        // Leaders: targets of direct control flow, data-referenced
        // addresses, instructions after terminators, and the first
        // instruction.
        let mut leaders: BTreeSet<u64> = BTreeSet::new();
        if let Some((first, _)) = d.insts.iter().next() {
            leaders.insert(*first);
        }
        for t in d.targets.iter().chain(d.data_refs.iter()) {
            if d.insts.contains_key(t) {
                leaders.insert(*t);
            }
        }
        let mut prev_end: Option<u64> = None;
        for di in d.iter() {
            if let Some(pe) = prev_end {
                if pe != di.addr {
                    // Discontinuity: new region, new leader.
                    leaders.insert(di.addr);
                }
            }
            if di.inst.is_terminator() {
                leaders.insert(di.next_addr());
            }
            prev_end = Some(di.next_addr());
        }

        let mut cfg = Cfg::default();
        let mut current: Vec<DisasmInst> = Vec::new();
        let mut start: Option<u64> = None;

        let flush = |cfg: &mut Cfg, start: &mut Option<u64>, insts: &mut Vec<DisasmInst>| {
            let Some(s) = start.take() else {
                return;
            };
            if insts.is_empty() {
                return;
            }
            let last = *insts.last().expect("non-empty");
            let (succs, terminator) = successors(&last, d);
            cfg.blocks.insert(
                s,
                BasicBlock {
                    start: s,
                    insts: std::mem::take(insts),
                    succs,
                    terminator,
                },
            );
        };

        let mut prev_end: Option<u64> = None;
        for di in d.iter() {
            let discontinuous = prev_end.is_some_and(|pe| pe != di.addr);
            if leaders.contains(&di.addr) || discontinuous {
                flush(&mut cfg, &mut start, &mut current);
            }
            if start.is_none() {
                start = Some(di.addr);
            }
            current.push(*di);
            if di.inst.is_terminator() && !matches!(di.inst, Inst::Ecall) {
                flush(&mut cfg, &mut start, &mut current);
            }
            prev_end = Some(di.next_addr());
        }
        flush(&mut cfg, &mut start, &mut current);

        // Prune successor edges to blocks that exist; record preds.
        let existing: BTreeSet<u64> = cfg.blocks.keys().copied().collect();
        for b in cfg.blocks.values_mut() {
            b.succs.retain(|s| existing.contains(s));
        }
        let edges: Vec<(u64, u64)> = cfg
            .blocks
            .values()
            .flat_map(|b| b.succs.iter().map(move |s| (b.start, *s)))
            .collect();
        for (from, to) in edges {
            cfg.preds.entry(to).or_default().push(from);
        }
        cfg
    }
}

fn successors(last: &DisasmInst, d: &Disassembly) -> (Vec<u64>, Terminator) {
    match last.inst {
        Inst::Jal { rd, .. } => {
            let target = last.inst.direct_target(last.addr).expect("jal target");
            let is_call = rd != XReg::ZERO;
            let mut succs = vec![target];
            if is_call {
                succs.push(last.next_addr());
            }
            (succs, Terminator::Jump { is_call })
        }
        Inst::Jalr { rd, .. } => {
            let is_call = rd != XReg::ZERO;
            let succs = if is_call {
                vec![last.next_addr()]
            } else {
                vec![]
            };
            (succs, Terminator::Indirect { is_call })
        }
        Inst::Branch { .. } => {
            let target = last.inst.direct_target(last.addr).expect("branch target");
            (vec![target, last.next_addr()], Terminator::Branch)
        }
        Inst::Ebreak => (vec![], Terminator::Stop),
        _ => {
            // Fallthrough, if the next instruction is recognized.
            let next = last.next_addr();
            if d.insts.contains_key(&next) {
                (vec![next], Terminator::Fallthrough)
            } else {
                (vec![], Terminator::Stop)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disasm::disassemble;
    use chimera_obj::{assemble, AsmOptions};

    fn cfg(src: &str) -> (chimera_obj::Binary, Cfg) {
        let bin = assemble(src, AsmOptions::default()).unwrap();
        let d = disassemble(&bin);
        (bin, Cfg::build(&d))
    }

    #[test]
    fn diamond_shape() {
        let (bin, g) = cfg("
            _start:
                beqz a0, left
                addi a1, a1, 1
                j join
            left:
                addi a2, a2, 1
            join:
                ecall
        ");
        // Blocks: entry(beqz), then-side, left, join.
        assert_eq!(g.blocks.len(), 4);
        let entry = &g.blocks[&bin.entry];
        assert_eq!(entry.succs.len(), 2);
        assert_eq!(entry.terminator, Terminator::Branch);
        // Join has two preds.
        let join_addr = *g.blocks.keys().last().unwrap();
        assert_eq!(g.preds[&join_addr].len(), 2);
    }

    #[test]
    fn loop_back_edge() {
        let (bin, g) = cfg("
            _start:
                li t0, 5
            loop:
                addi t0, t0, -1
                bnez t0, loop
                ecall
        ");
        let loop_start = bin.entry + 4;
        let loop_block = &g.blocks[&loop_start];
        assert!(loop_block.succs.contains(&loop_start));
    }

    #[test]
    fn indirect_jump_has_no_succs() {
        let (_, g) = cfg("
            _start:
                jr a0
        ");
        let b = g.blocks.values().next().unwrap();
        assert!(b.succs.is_empty());
        assert!(b.has_unknown_succs());
    }

    #[test]
    fn call_block_falls_through() {
        let (bin, g) = cfg("
            _start:
                call f
                ecall
            f:
                ret
        ");
        let entry = g.block_containing(bin.entry).unwrap();
        assert!(matches!(
            entry.terminator,
            Terminator::Indirect { is_call: true }
        ));
        assert_eq!(entry.succs, vec![bin.entry + 8]);
    }

    #[test]
    fn block_containing_interior_address() {
        let (bin, g) = cfg("
            _start:
                addi a0, a0, 1
                addi a0, a0, 2
                ecall
        ");
        let b = g.block_containing(bin.entry + 4).unwrap();
        assert_eq!(b.start, bin.entry);
    }
}
