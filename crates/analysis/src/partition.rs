//! Stable partitioning of a disassembly into fixed-size instruction
//! spans.
//!
//! The rewrite pipeline's per-unit parallelism needs a partition that is
//! a pure function of the disassembly — never of the worker count or of
//! scheduling — so that unit boundaries (and therefore every downstream
//! layout decision) are deterministic. [`inst_spans`] is that primitive:
//! half-open index ranges over the address-ordered instruction list.

use crate::disasm::Disassembly;

/// Splits `d`'s instructions (in address order) into consecutive spans of
/// at most `span_insts` instructions, returned as half-open `[start, end)`
/// index ranges into the address-ordered instruction sequence.
///
/// The result depends only on the disassembly and `span_insts`, making it
/// a stable unit partition for deterministic parallel rewriting.
pub fn inst_spans(d: &Disassembly, span_insts: usize) -> Vec<(usize, usize)> {
    let n = d.insts.len();
    let step = span_insts.max(1);
    (0..n)
        .step_by(step)
        .map(|start| (start, (start + step).min(n)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disasm::disassemble;
    use chimera_obj::{assemble, AsmOptions};

    #[test]
    fn spans_cover_exactly_once() {
        let src = "_start:\n".to_string() + &"    nop\n".repeat(23) + "    ecall\n";
        let bin = assemble(&src, AsmOptions::default()).unwrap();
        let d = disassemble(&bin);
        for span in [1, 3, 7, 1000] {
            let spans = inst_spans(&d, span);
            let mut next = 0;
            for (s, e) in &spans {
                assert_eq!(*s, next);
                assert!(*e > *s && *e - *s <= span);
                next = *e;
            }
            assert_eq!(next, d.insts.len());
        }
    }
}
