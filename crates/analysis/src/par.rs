//! Zero-dependency deterministic parallel mapping.
//!
//! The rewrite pipeline's parallel stages all reduce to "apply a pure
//! function to every index and reassemble the results in index order".
//! [`map_indexed`] implements exactly that on scoped `std::thread` workers
//! pulling indices from a shared atomic counter: scheduling is racy, but
//! because each element is produced by a pure function of its index and
//! the results are reassembled positionally, the output is bit-identical
//! for every worker count (including 1, which runs inline with no
//! threads at all).

use std::sync::atomic::{AtomicUsize, Ordering};

/// Applies `f` to every index in `0..n` and returns the results in index
/// order, fanning the work out over `workers` scoped threads.
///
/// `workers <= 1` (or trivially small `n`) runs sequentially on the
/// calling thread — the same closure on the same indices — so the
/// sequential path is the parallel path minus the threads, not a
/// separate implementation.
pub fn map_indexed<T, F>(workers: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if workers <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let parts: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers.min(n))
            .map(|_| {
                scope.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        out.push((i, f(i)));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("map_indexed worker panicked"))
            .collect()
    });
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    for part in parts {
        for (i, v) in part {
            slots[i] = Some(v);
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index produced exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_across_worker_counts() {
        let expect: Vec<usize> = (0..1000).map(|i| i * 7 + 3).collect();
        for workers in [1, 2, 4, 8] {
            assert_eq!(map_indexed(workers, 1000, |i| i * 7 + 3), expect);
        }
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(map_indexed(8, 0, |i| i), Vec::<usize>::new());
        assert_eq!(map_indexed(8, 1, |i| i + 1), vec![1]);
    }
}
