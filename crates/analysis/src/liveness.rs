//! Backward register-liveness dataflow over the CFG.
//!
//! This is the "traditional register liveness analysis" of §4.2 (Challenge
//! 2): it is sound but conservative — at any block whose successors are not
//! fully known (indirect jumps, returns, unrecognized fallthrough) every
//! register is assumed live. That conservatism is precisely why the paper's
//! measurement (Table 3) finds a dead register at only ~64% of exit
//! positions with plain liveness, and why CHBP adds exit-position shifting
//! on top (implemented in `chimera-rewrite`).

use crate::cfg::Cfg;
use chimera_isa::XReg;
use std::collections::HashMap;

/// A set of integer registers as a bitmask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RegSet(pub u32);

impl RegSet {
    /// The empty set.
    pub const EMPTY: RegSet = RegSet(0);
    /// All 32 registers.
    pub const ALL: RegSet = RegSet(u32::MAX);

    /// Inserts a register.
    pub fn insert(&mut self, r: XReg) {
        self.0 |= 1 << r.index();
    }

    /// Removes a register.
    pub fn remove(&mut self, r: XReg) {
        self.0 &= !(1 << r.index());
    }

    /// Membership test.
    pub fn contains(self, r: XReg) -> bool {
        self.0 & (1 << r.index()) != 0
    }

    /// Set union.
    pub fn union(self, other: RegSet) -> RegSet {
        RegSet(self.0 | other.0)
    }

    /// Iterates the members.
    pub fn iter(self) -> impl Iterator<Item = XReg> {
        XReg::all().filter(move |r| self.contains(*r))
    }
}

/// Liveness facts: the set of registers live *into* each instruction.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Liveness {
    /// live-in per instruction address.
    live_in: HashMap<u64, RegSet>,
}

/// Registers that must never be treated as dead regardless of dataflow:
/// the ABI gives them process-wide meaning (`zero`, `ra` is excluded —
/// it is clobberable between calls and a prime trampoline candidate — but
/// `sp`/`gp`/`tp` hold ambient state).
fn pinned() -> RegSet {
    let mut s = RegSet::EMPTY;
    s.insert(XReg::ZERO);
    s.insert(XReg::SP);
    s.insert(XReg::GP);
    s.insert(XReg::TP);
    s
}

/// Computes one block's live-in from its successors' live-ins: the union
/// of successor entries (everything for unknown successors) pushed
/// backward through the block's instructions.
fn block_transfer(b: &crate::cfg::BasicBlock, block_in: &HashMap<u64, RegSet>) -> RegSet {
    let mut live: RegSet = if b.has_unknown_succs() {
        RegSet::ALL
    } else {
        let mut l = RegSet::EMPTY;
        for succ in &b.succs {
            l = l.union(block_in.get(succ).copied().unwrap_or(RegSet::EMPTY));
        }
        l
    };
    for di in b.insts.iter().rev() {
        if let Some(d) = di.inst.def_x() {
            live.remove(d);
        }
        for u in di.inst.uses_x() {
            live.insert(u);
        }
    }
    live
}

impl Liveness {
    /// Runs the backward dataflow to a fixpoint.
    pub fn compute(cfg: &Cfg) -> Liveness {
        Self::compute_with(cfg, 1)
    }

    /// [`Liveness::compute`] with an explicit worker count.
    ///
    /// The sequential path iterates blocks Gauss–Seidel style (reverse
    /// address order, in-place updates); the parallel path runs Jacobi
    /// rounds — every block's transfer evaluated against the *previous*
    /// round's facts, in parallel. Both are chaotic iterations of the
    /// same monotone system on a finite lattice, so they converge to the
    /// identical least fixpoint; the resulting per-instruction facts are
    /// bit-identical for every worker count.
    pub fn compute_with(cfg: &Cfg, workers: usize) -> Liveness {
        // Block-level live-in.
        let mut block_in: HashMap<u64, RegSet> = HashMap::new();
        let starts: Vec<u64> = cfg.blocks.keys().copied().collect();

        if workers <= 1 {
            let mut changed = true;
            while changed {
                changed = false;
                // Reverse address order is a decent approximation of
                // reverse topological order for typical layouts.
                for &s in starts.iter().rev() {
                    let live = block_transfer(&cfg.blocks[&s], &block_in);
                    let entry = block_in.entry(s).or_insert(RegSet::EMPTY);
                    let merged = entry.union(live);
                    if merged != *entry {
                        *entry = merged;
                        changed = true;
                    }
                }
            }
        } else {
            let mut changed = true;
            while changed {
                changed = false;
                let round = crate::par::map_indexed(workers, starts.len(), |i| {
                    // Jacobi: reads only the previous round's facts.
                    block_transfer(&cfg.blocks[&starts[i]], &block_in)
                });
                for (&s, live) in starts.iter().zip(round) {
                    let entry = block_in.entry(s).or_insert(RegSet::EMPTY);
                    let merged = entry.union(live);
                    if merged != *entry {
                        *entry = merged;
                        changed = true;
                    }
                }
            }
        }

        // Expand to per-instruction live-in (independent per block; the
        // per-block fact vectors land in a keyed map, so merge order is
        // irrelevant).
        let blocks: Vec<&crate::cfg::BasicBlock> = cfg.blocks.values().collect();
        let expanded = crate::par::map_indexed(workers, blocks.len(), |i| {
            let b = blocks[i];
            let mut live: RegSet = if b.has_unknown_succs() {
                RegSet::ALL
            } else {
                let mut l = RegSet::EMPTY;
                for succ in &b.succs {
                    l = l.union(block_in.get(succ).copied().unwrap_or(RegSet::EMPTY));
                }
                l
            };
            let mut facts = Vec::with_capacity(b.insts.len());
            for di in b.insts.iter().rev() {
                if let Some(d) = di.inst.def_x() {
                    live.remove(d);
                }
                for u in di.inst.uses_x() {
                    live.insert(u);
                }
                facts.push((di.addr, live));
            }
            facts
        });
        let mut live_in: HashMap<u64, RegSet> = HashMap::new();
        for facts in expanded {
            live_in.extend(facts);
        }
        Liveness { live_in }
    }

    /// The registers live into the instruction at `addr` (i.e. whose values
    /// may be read on some path from `addr`). Unanalyzed addresses report
    /// everything live (safe).
    pub fn live_in(&self, addr: u64) -> RegSet {
        self.live_in.get(&addr).copied().unwrap_or(RegSet::ALL)
    }

    /// A register that is *dead* immediately before `addr` — safe for a
    /// trampoline at `addr` to clobber — preferring caller-saved
    /// temporaries. `None` when everything usable is live.
    ///
    /// This is the primitive behind both "traditional liveness" exit
    /// register selection and CHBP's exit-position shifting.
    pub fn dead_register_at(&self, addr: u64) -> Option<XReg> {
        let live = self.live_in(addr).union(pinned());
        XReg::caller_saved().find(|r| !live.contains(*r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::Cfg;
    use crate::disasm::disassemble;
    use chimera_obj::{assemble, AsmOptions};

    fn liveness(src: &str) -> (chimera_obj::Binary, Liveness) {
        let bin = assemble(src, AsmOptions::default()).unwrap();
        let d = disassemble(&bin);
        let cfg = Cfg::build(&d);
        (bin, Liveness::compute(&cfg))
    }

    #[test]
    fn redefined_register_is_dead_before_def() {
        // t0 is written before being read: dead at the first instruction.
        let (bin, l) = liveness(
            "
            _start:
                li t0, 1      # t0 dead *before* this (it's about to be overwritten)
                add a0, t0, t0
                li t0, 2      # at this point old t0 value is dead
                add a1, t0, t0
                ecall
        ",
        );
        // Before the second li t0: t0's old value is dead.
        let live = l.live_in(bin.entry + 8);
        assert!(!live.contains(chimera_isa::XReg::T0));
        // Before the first add: t0 live.
        let live = l.live_in(bin.entry + 4);
        assert!(live.contains(chimera_isa::XReg::T0));
    }

    #[test]
    fn loop_keeps_counter_live() {
        let (bin, l) = liveness(
            "
            _start:
                li t0, 5
            loop:
                addi t0, t0, -1
                bnez t0, loop
                ecall
        ",
        );
        // Inside the loop t0 is live (read by addi and bnez and next iter).
        let live = l.live_in(bin.entry + 4);
        assert!(live.contains(chimera_isa::XReg::T0));
    }

    #[test]
    fn indirect_jump_forces_all_live() {
        let (bin, l) = liveness(
            "
            _start:
                addi t1, t1, 1
                jr a0
        ",
        );
        let live = l.live_in(bin.entry);
        // Everything is live because the jr's successors are unknown.
        assert!(live.contains(chimera_isa::XReg::T2));
        assert_eq!(l.dead_register_at(bin.entry), None);
    }

    #[test]
    fn dead_register_found_in_straightline_code() {
        // Everything dead after the ecall path; before `li t5` the old t5
        // is dead, and succeeding code never reads most temporaries.
        let (bin, l) = liveness(
            "
            _start:
                li t5, 1
                add a0, t5, t5
                li a7, 93
                ecall
        ",
        );
        // ecall has a fallthrough to unrecognized code → its *own* block
        // conservatively ends; but before the first li, t5 is dead.
        let dead = l.dead_register_at(bin.entry);
        assert_eq!(dead, Some(chimera_isa::XReg::T5));
    }

    #[test]
    fn pinned_registers_never_reported_dead() {
        let (bin, l) = liveness(
            "
            _start:
                li t0, 1
                ecall
        ",
        );
        if let Some(r) = l.dead_register_at(bin.entry) {
            assert!(
                r != chimera_isa::XReg::GP
                    && r != chimera_isa::XReg::SP
                    && r != chimera_isa::XReg::TP
            );
        }
    }

    #[test]
    fn jacobi_rounds_match_gauss_seidel() {
        let src = "
            _start:
                li t0, 5
                li a0, 0
            loop:
                add a0, a0, t0
                addi t0, t0, -1
                beqz t1, skip
                addi a1, a1, 1
            skip:
                bnez t0, loop
                jr ra
        ";
        let bin = assemble(src, AsmOptions::default()).unwrap();
        let d = disassemble(&bin);
        let cfg = Cfg::build(&d);
        let seq = Liveness::compute(&cfg);
        for workers in [2, 4, 8] {
            assert_eq!(
                Liveness::compute_with(&cfg, workers),
                seq,
                "{workers} workers"
            );
        }
    }

    #[test]
    fn unknown_address_is_all_live() {
        let (_, l) = liveness("_start:\n ecall\n");
        assert_eq!(l.live_in(0xdead_0000), RegSet::ALL);
    }
}
